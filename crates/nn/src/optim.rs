//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizers operate on a [`Network`]'s `(parameter, gradient)` pairs;
//! state (momentum/moment buffers) is keyed by parameter position, so an
//! optimizer must be used with a single network for its lifetime.

use crate::Network;
use healthmon_tensor::Tensor;

/// An optimization algorithm that applies accumulated gradients to a
/// network's parameters.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step from the currently-accumulated gradients
    /// (does not zero them; call [`Network::zero_grads`] afterwards).
    fn step(&mut self, net: &mut Network);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
///
/// # Example
///
/// ```
/// use healthmon_nn::optim::{Optimizer, Sgd};
///
/// let mut sgd = Sgd::new(0.1).momentum(0.9).weight_decay(1e-4);
/// assert_eq!(sgd.learning_rate(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `[0, 1)`.
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum {m} must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Adds decoupled L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `wd < 0`.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative, got {wd}");
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        let pairs = net.params_and_grads();
        if self.velocity.is_empty() {
            self.velocity = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape())).collect();
        }
        assert_eq!(
            self.velocity.len(),
            pairs.len(),
            "optimizer was initialized against a different network"
        );
        for ((param, grad), vel) in pairs.into_iter().zip(&mut self.velocity) {
            if self.weight_decay > 0.0 {
                // L2 decay folded into the gradient.
                for (g, p) in grad.as_mut_slice().iter_mut().zip(param.as_slice()) {
                    *g += self.weight_decay * p;
                }
            }
            if self.momentum > 0.0 {
                *vel *= self.momentum;
                vel.axpy(1.0, grad);
                param.axpy(-self.lr, vel);
            } else {
                param.axpy(-self.lr, grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Overrides the exponential decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either beta is not in `[0, 1)`.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network) {
        let pairs = net.params_and_grads();
        if self.m.is_empty() {
            self.m = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape())).collect();
            self.v = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape())).collect();
        }
        assert_eq!(self.m.len(), pairs.len(), "optimizer was initialized against a different network");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((p, &g), (mv, vv)) in param
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::SoftmaxCrossEntropy;
    use healthmon_tensor::{SeededRng, Tensor};

    fn setup() -> (Network, Tensor, Vec<usize>) {
        let mut rng = SeededRng::new(1);
        let mut net = Network::new(vec![4]);
        net.push(Dense::new(4, 3, &mut rng));
        let x = Tensor::randn(&[8, 4], &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        (net, x, labels)
    }

    fn train_steps(net: &mut Network, opt: &mut dyn Optimizer, x: &Tensor, labels: &[usize], steps: usize) -> (f32, f32) {
        let first = SoftmaxCrossEntropy::with_labels(&net.forward(x), labels).loss;
        let mut last = first;
        for _ in 0..steps {
            net.zero_grads();
            let out = SoftmaxCrossEntropy::with_labels(&net.forward(x), labels);
            net.backward(&out.grad);
            opt.step(net);
            last = out.loss;
        }
        (first, last)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut net, x, labels) = setup();
        let mut opt = Sgd::new(0.5);
        let (first, last) = train_steps(&mut net, &mut opt, &x, &labels, 50);
        assert!(last < first * 0.5, "sgd failed to learn: {first} -> {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let (mut net_a, x, labels) = setup();
        let mut net_b = net_a.clone();
        let mut plain = Sgd::new(0.05);
        let mut heavy = Sgd::new(0.05).momentum(0.9);
        let (_, a) = train_steps(&mut net_a, &mut plain, &x, &labels, 30);
        let (_, b) = train_steps(&mut net_b, &mut heavy, &x, &labels, 30);
        assert!(b < a, "momentum should converge faster: plain {a} vs momentum {b}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (mut net, x, labels) = setup();
        let mut opt = Adam::new(0.05);
        let (first, last) = train_steps(&mut net, &mut opt, &x, &labels, 50);
        assert!(last < first * 0.5, "adam failed to learn: {first} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut net, x, labels) = setup();
        let mut decayed = net.clone();
        let mut opt_plain = Sgd::new(0.1);
        let mut opt_decay = Sgd::new(0.1).weight_decay(0.1);
        train_steps(&mut net, &mut opt_plain, &x, &labels, 30);
        train_steps(&mut decayed, &mut opt_decay, &x, &labels, 30);
        assert!(decayed.param_stats().l2 < net.param_stats().l2);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        let mut adam = Adam::new(0.2).betas(0.8, 0.99);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }
}
