//! Reductions and classification statistics.
//!
//! These are the quantities the paper's test-pattern methods are defined
//! over: logit standard deviation (C-TP's selection rule), softmax
//! confidence vectors (all SDC metrics), and top-k rankings (SDC-1/SDC-5).

use crate::Tensor;

/// Result of a top-k query: class indices and their values, ordered from
/// highest to lowest value.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    /// Indices of the k largest elements, descending by value.
    pub indices: Vec<usize>,
    /// The corresponding values, descending.
    pub values: Vec<f32>,
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Population standard deviation of all elements.
    ///
    /// This is the `std` of the paper's C-TP selection rule
    /// `min sqrt(1/n * sum_i (Z(X)_i - mean(Z(X)))^2)` when applied to a
    /// logit vector.
    pub fn std(&self) -> f32 {
        let mean = self.mean();
        let var =
            self.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / self.len() as f32;
        var.sqrt()
    }

    /// Largest element.
    ///
    /// # Panics
    ///
    /// Panics if any element is NaN.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, |a, b| {
                assert!(!b.is_nan(), "max() on tensor containing NaN");
                a.max(b)
            })
    }

    /// Smallest element.
    ///
    /// # Panics
    ///
    /// Panics if any element is NaN.
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, |a, b| {
                assert!(!b.is_nan(), "min() on tensor containing NaN");
                a.min(b)
            })
    }

    /// Index of the largest element (first occurrence on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.as_slice().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// The `k` largest elements and their indices, descending.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > len()`.
    pub fn topk(&self, k: usize) -> TopK {
        assert!(k > 0 && k <= self.len(), "topk k={k} out of range for length {}", self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let data = self.as_slice();
        idx.sort_by(|&a, &b| data[b].partial_cmp(&data[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        let values = idx.iter().map(|&i| data[i]).collect();
        TopK { indices: idx, values }
    }

    /// Numerically-stable softmax over the flattened tensor.
    ///
    /// Returns a probability vector: non-negative, summing to 1.
    pub fn softmax(&self) -> Tensor {
        let max = self.max();
        let exps: Vec<f32> = self.as_slice().iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        Tensor::from_vec(exps.into_iter().map(|e| e / z).collect(), self.shape())
            .expect("softmax preserves shape")
    }

    /// Numerically-stable log-softmax over the flattened tensor.
    pub fn log_softmax(&self) -> Tensor {
        let max = self.max();
        let log_z = self
            .as_slice()
            .iter()
            .map(|&v| (v - max).exp())
            .sum::<f32>()
            .ln()
            + max;
        self.map(|v| v - log_z)
    }

    /// Row-wise softmax of a 2-D tensor (one distribution per row).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let rows = self.shape()[0];
        let out: Vec<Tensor> = (0..rows).map(|r| self.row(r).softmax()).collect();
        Tensor::stack_rows(&out)
    }

    /// Cross-entropy `−Σ target_i · log(softmax(self))_i` of a logit vector
    /// against a probability-vector target.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn cross_entropy_with(&self, target: &Tensor) -> f32 {
        assert_eq!(self.len(), target.len(), "cross_entropy length mismatch");
        let log_p = self.log_softmax();
        -target.dot(&log_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn reductions_hand_example() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        // population std of [1,2,3,4] = sqrt(1.25)
        assert!((t.std() - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn std_of_constant_is_zero() {
        assert_eq!(Tensor::full(&[10], 3.0).std(), 0.0);
    }

    #[test]
    fn argmax_first_on_tie() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0, 0.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn topk_ordering() {
        let t = Tensor::from_slice(&[0.1, 0.9, 0.3, 0.7]);
        let k = t.topk(3);
        assert_eq!(k.indices, vec![1, 3, 2]);
        assert_eq!(k.values, vec![0.9, 0.7, 0.3]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s = t.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-6);
        let shifted = t.shift(100.0).softmax();
        for (a, b) in s.as_slice().iter().zip(shifted.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_slice(&[1000.0, 999.0]);
        let s = t.softmax();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        assert!((s.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let mut rng = SeededRng::new(2);
        let t = Tensor::randn(&[10], &mut rng);
        let ls = t.log_softmax();
        let s = t.softmax();
        for (l, p) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_per_row() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 10.0, 0.0], &[2, 2]).unwrap();
        let s = t.softmax_rows();
        assert!((s.row(0).sum() - 1.0).abs() < 1e-6);
        assert!((s.row(1).sum() - 1.0).abs() < 1e-6);
        assert!(s.at(&[1, 0]) > 0.99);
    }

    #[test]
    fn cross_entropy_uniform_target() {
        // Uniform logits against uniform target: CE = ln(n).
        let t = Tensor::zeros(&[4]);
        let target = Tensor::full(&[4], 0.25);
        assert!((t.cross_entropy_with(&target) - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let t = Tensor::from_slice(&[10.0, 0.0, 0.0]);
        let mut target = Tensor::zeros(&[3]);
        *target.at_mut(&[0]) = 1.0;
        assert!(t.cross_entropy_with(&target) < 0.01);
    }
}
