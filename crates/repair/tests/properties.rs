//! Property-based edge-case tests for defect maps and the repair
//! hierarchy built on them.
//!
//! Run on the deterministic `healthmon-check` harness; a failure at case
//! `N` reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon_check::{run_cases, Gen};
use healthmon_repair::{remap_rows, repair_with_spares, DefectMap, StuckCell};
use healthmon_serdes::{FromJson, ToJson};
use healthmon_tensor::{SeededRng, Tensor};

const CASES: usize = 32;

fn random_matrix(g: &mut Gen) -> Tensor {
    let rows = g.usize_in(2, 12);
    let cols = g.usize_in(2, 10);
    let data = g.vec_f32(rows * cols, -2.0, 2.0);
    Tensor::from_vec(data, &[rows, cols]).expect("shape matches data")
}

#[test]
fn empty_map_is_a_no_op_everywhere() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let map = DefectMap::default();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.apply(&w), w, "an empty map must not touch the weights");

        let remap = remap_rows(&w, &map);
        assert_eq!(remap.unrepaired_error, 0.0);
        assert_eq!(remap.repaired_error, 0.0);
        assert_eq!(remap.recovery(), 0.0, "nothing to recover from");
        assert_eq!(remap.repaired_weights, w);

        let spare = repair_with_spares(&w, &map, g.usize_in(0, 4));
        assert_eq!(spare.unrepaired_error, 0.0);
        assert!(spare.replaced_columns.is_empty());
    });
}

#[test]
fn fully_defective_matrix_remaps_without_panic_and_recovers_nothing() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        // Every cell stuck at zero: damage is assignment-invariant, so
        // remapping must survive the degenerate input and report zero
        // recovery rather than panicking or claiming improvement.
        let cells = (0..rows)
            .flat_map(|row| (0..cols).map(move |col| StuckCell { row, col, value: 0.0 }))
            .collect();
        let map = DefectMap::new(cells);
        let remap = remap_rows(&w, &map);
        assert!((remap.repaired_error - remap.unrepaired_error).abs() < 1e-4);
        assert!(remap.recovery().abs() < 1e-4, "recovery {}", remap.recovery());
        assert!(remap.repaired_weights.as_slice().iter().all(|&v| v == 0.0));
    });
}

#[test]
fn single_all_defective_row_never_makes_things_worse() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let row = g.usize_in(0, rows);
        let cells = (0..cols).map(|col| StuckCell { row, col, value: 0.0 }).collect();
        let map = DefectMap::new(cells);
        let remap = remap_rows(&w, &map);
        assert!(remap.repaired_error <= remap.unrepaired_error + 1e-5);
        assert!((0.0..=1.0 + 1e-6).contains(&remap.recovery()));
        // The defective physical row hosts exactly one logical row.
        let mut sorted = remap.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..rows).collect::<Vec<_>>());
    });
}

#[test]
fn sample_for_matrix_is_deterministic_in_the_seed() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let rate = g.f64_in(0.0, 0.5);
        let seed = g.seed();
        let a = DefectMap::sample_for_matrix(&w, rate, &mut SeededRng::new(seed));
        let b = DefectMap::sample_for_matrix(&w, rate, &mut SeededRng::new(seed));
        assert_eq!(a, b, "same seed must sample the same map");
    });
}

#[test]
fn sample_rate_extremes_are_exact() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let seed = g.seed();
        let none = DefectMap::sample_for_matrix(&w, 0.0, &mut SeededRng::new(seed));
        assert!(none.is_empty(), "rate 0 must sample no defects");
        let all = DefectMap::sample_for_matrix(&w, 1.0, &mut SeededRng::new(seed));
        assert_eq!(all.len(), w.shape()[0] * w.shape()[1], "rate 1 must stick every cell");
    });
}

#[test]
fn defect_maps_round_trip_through_json() {
    run_cases(CASES, |g: &mut Gen| {
        let w = random_matrix(g);
        let rate = g.f64_in(0.0, 0.4);
        let map = DefectMap::sample_for_matrix(&w, rate, &mut SeededRng::new(g.seed()));
        let text = healthmon_serdes::to_string(&map.to_json());
        let parsed: DefectMap =
            DefectMap::from_json(&healthmon_serdes::from_str(&text).expect("valid JSON"))
                .expect("defect map decodes");
        assert_eq!(parsed, map);
    });
}
