//! **Fig 2**: the 10 O-TP ("white noise" style) test patterns generated
//! from LeNet-5. Writes each pattern as a portable graymap
//! (`artifacts/fig2_otp_<class>.pgm`) and prints an ASCII contact sheet.

use healthmon_bench::harness::{artifact_dir, emit, pattern_suite, train_or_load, Benchmark};
use healthmon_tensor::Tensor;
use std::fmt::Write as _;

const RAMP: &[u8] = b" .:-=+*#%@";

fn ascii(image: &Tensor) -> Vec<String> {
    let mut rows = Vec::new();
    for y in (0..28).step_by(2) {
        let mut line = String::new();
        for x in (0..28).step_by(2) {
            let v = (image.at(&[0, y, x])
                + image.at(&[0, y + 1, x])
                + image.at(&[0, y, x + 1])
                + image.at(&[0, y + 1, x + 1]))
                / 4.0;
            let idx = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f32).round() as usize;
            line.push(RAMP[idx] as char);
        }
        rows.push(line);
    }
    rows
}

fn write_pgm(image: &Tensor, path: &std::path::Path) {
    let mut data = String::from("P2\n28 28\n255\n");
    for y in 0..28 {
        let row: Vec<String> = (0..28)
            .map(|x| (((image.at(&[0, y, x])).clamp(0.0, 1.0) * 255.0) as u8).to_string())
            .collect();
        data.push_str(&row.join(" "));
        data.push('\n');
    }
    std::fs::write(path, data).expect("artifact directory must be writable");
}

fn main() {
    let mut trained = train_or_load(Benchmark::Lenet5Digits);
    let suite = pattern_suite(&mut trained);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 2 — the 10 O-TP test patterns generated from LeNet-5 (one per class).\n\
         PGM files: artifacts/fig2_otp_<class>.pgm\n"
    );
    let blocks: Vec<Vec<String>> = (0..suite.otp10.len())
        .map(|i| {
            let pattern = suite.otp10.pattern(i);
            write_pgm(&pattern, &artifact_dir().join(format!("fig2_otp_{i}.pgm")));
            ascii(&pattern)
        })
        .collect();
    // Contact sheet, five patterns per row.
    for chunk in blocks.chunks(5) {
        for row in 0..chunk[0].len() {
            let line: Vec<&str> = chunk.iter().map(|b| b[row].as_str()).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Unlike C-TP/AET (which are recognizable digits), these patterns are\n\
         structured noise — matching the paper's observation that O-TP inputs\n\
         are 'completely different from the input images used in training and\n\
         testing'."
    );
    emit("fig2", &out);
}
