//! Deterministic random source for the whole workspace.
//!
//! Every stochastic component — weight init, dataset synthesis, fault
//! injection, O-TP seeding — draws from a [`SeededRng`], so any experiment
//! is exactly reproducible from the seeds recorded in its report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random number generator with the samplers the ReRAM
/// error models need.
///
/// Wraps [`rand::rngs::StdRng`] and adds Box–Muller normal / lognormal
/// sampling (the `rand` crate alone does not ship distributions).
///
/// # Example
///
/// ```
/// use healthmon_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(1234);
/// let theta = rng.normal(0.0, 0.1);
/// assert!(theta.is_finite());
/// // lognormal multiplicative weight error, as in w' = w * e^theta
/// let factor = rng.lognormal(0.0, 0.1);
/// assert!(factor > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derives an independent child generator; used to give each fault
    /// model or worker its own stream while keeping the parent stream
    /// untouched by how much the child consumes.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let base: u64 = self.inner.random();
        // SplitMix-style mixing of the stream id into the forked seed.
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SeededRng::new(z ^ (z >> 31))
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.inner.random::<f32>()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.inner.random::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        (self.inner.random::<f64>()) < p
    }

    /// Normal sample with the given mean and standard deviation
    /// (Box–Muller; the spare variate is cached).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        let z = if let Some(z) = self.spare_normal.take() {
            z
        } else {
            // Box–Muller: two uniforms -> two independent standard normals.
            let u1: f32 = loop {
                let u = self.inner.random::<f32>();
                if u > f32::MIN_POSITIVE {
                    break u;
                }
            };
            let u2: f32 = self.inner.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            r * theta.cos()
        };
        mean + std_dev * z
    }

    /// Lognormal sample `e^N(mu, sigma^2)`, the multiplicative factor of the
    /// paper's programming-variation error model `w' = w * e^theta`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn lognormal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free; shuffles a
    /// prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx = self.permutation(n);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SeededRng::new(99);
        let mut b = SeededRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut rng = SeededRng::new(21);
        let n = 20_000;
        let mut samples: Vec<f32> = (0..n).map(|_| rng.lognormal(0.0, 0.3)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Median of lognormal(mu=0) is e^0 = 1.
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SeededRng::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = SeededRng::new(3);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SeededRng::new(4);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn fork_streams_are_independent_of_consumption() {
        let mut parent1 = SeededRng::new(42);
        let mut parent2 = SeededRng::new(42);
        let mut c1 = parent1.fork(0);
        let c2 = parent2.fork(0);
        // Consuming from one child must not change the other's stream.
        for _ in 0..10 {
            c1.unit();
        }
        let mut c1b = SeededRng::new(42).fork(0);
        for _ in 0..10 {
            c1b.unit();
        }
        assert_eq!(c1.unit(), c1b.unit());
        let _ = c2;
    }

    #[test]
    fn fork_distinct_streams_differ() {
        let mut parent = SeededRng::new(42);
        // fork() consumes parent state, so fork ids must come from one parent.
        let mut a = parent.fork(1);
        let mut parent = SeededRng::new(42);
        let mut b = parent.fork(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chance_rejects_out_of_range() {
        SeededRng::new(0).chance(1.5);
    }
}
