//! `SynthObjects`: a procedural 32×32 RGB object dataset standing in for
//! CIFAR10.
//!
//! Each class pairs a shape family with a base hue; per-sample jitter
//! (hue rotation, size, position, background texture, brightness, pixel
//! noise) is deliberately heavy so classes overlap and a well-trained
//! ConvNet-7 lands near the ~80% regime of the paper's CIFAR10
//! experiments.

use crate::draw::Canvas;
use crate::{DataSplit, Dataset, DatasetSpec};
use healthmon_tensor::{SeededRng, Tensor};

/// Image side length.
pub const SIDE: usize = 32;
/// Number of object classes.
pub const CLASSES: usize = 10;

/// Shape family of each class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShapeKind {
    Circle,
    Square,
    Triangle,
    Ring,
    HStripes,
    VStripes,
    TwinDots,
    Cross,
    Diagonal,
    Checker,
}

const CLASS_SHAPES: [ShapeKind; 10] = [
    ShapeKind::Circle,
    ShapeKind::Square,
    ShapeKind::Triangle,
    ShapeKind::Ring,
    ShapeKind::HStripes,
    ShapeKind::VStripes,
    ShapeKind::TwinDots,
    ShapeKind::Cross,
    ShapeKind::Diagonal,
    ShapeKind::Checker,
];

/// Base hue (degrees) of each class.
const CLASS_HUES: [f32; 10] = [0.0, 120.0, 240.0, 60.0, 300.0, 180.0, 30.0, 270.0, 90.0, 160.0];

/// Converts HSV (`h` in degrees, `s`/`v` in `[0,1]`) to RGB.
fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let h = h.rem_euclid(360.0) / 60.0;
    let i = h.floor() as i32 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

/// Generator for the synthetic object dataset.
///
/// # Example
///
/// ```
/// use healthmon_data::{DatasetSpec, SynthObjects};
///
/// let spec = DatasetSpec { train: 40, test: 10, seed: 2, ..Default::default() };
/// let split = SynthObjects::new(spec).generate();
/// assert_eq!(split.train.images.shape(), &[40, 3, 32, 32]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SynthObjects {
    spec: DatasetSpec,
}

impl SynthObjects {
    /// Creates a generator from a spec.
    pub fn new(spec: DatasetSpec) -> Self {
        SynthObjects { spec }
    }

    /// Renders one object sample into a fresh `[3, 32, 32]` tensor.
    pub fn render(class: usize, noise: f32, rng: &mut SeededRng) -> Tensor {
        assert!(class < CLASSES, "class {class} out of range");
        let plane = SIDE * SIDE;

        // Foreground mask.
        let mut mask = vec![0.0f32; plane];
        {
            let mut canvas = Canvas::new(&mut mask, SIDE, SIDE);
            let cx = SIDE as f32 / 2.0 + rng.uniform(-6.0, 6.0);
            let cy = SIDE as f32 / 2.0 + rng.uniform(-6.0, 6.0);
            let size = rng.uniform(4.5, 10.0);
            match CLASS_SHAPES[class] {
                ShapeKind::Circle => canvas.fill_circle(cx, cy, size, 1.0),
                ShapeKind::Square => {
                    canvas.fill_rect(cx - size, cy - size * 0.9, cx + size, cy + size * 0.9, 1.0)
                }
                ShapeKind::Triangle => canvas.fill_triangle(
                    (cx, cy - size),
                    (cx - size, cy + size * 0.8),
                    (cx + size, cy + size * 0.8),
                    1.0,
                ),
                ShapeKind::Ring => canvas.ring(cx, cy, size, size * 0.25, 1.0),
                ShapeKind::HStripes => {
                    let gap = rng.uniform(4.0, 6.0);
                    let mut y = cy - size;
                    while y <= cy + size {
                        canvas.line(cx - size, y, cx + size, y, 1.2, 1.0);
                        y += gap;
                    }
                }
                ShapeKind::VStripes => {
                    let gap = rng.uniform(4.0, 6.0);
                    let mut x = cx - size;
                    while x <= cx + size {
                        canvas.line(x, cy - size, x, cy + size, 1.2, 1.0);
                        x += gap;
                    }
                }
                ShapeKind::TwinDots => {
                    let off = size * 0.7;
                    canvas.fill_circle(cx - off, cy, size * 0.45, 1.0);
                    canvas.fill_circle(cx + off, cy, size * 0.45, 1.0);
                }
                ShapeKind::Cross => {
                    canvas.line(cx - size, cy, cx + size, cy, size * 0.22, 1.0);
                    canvas.line(cx, cy - size, cx, cy + size, size * 0.22, 1.0);
                }
                ShapeKind::Diagonal => {
                    canvas.line(cx - size, cy - size, cx + size, cy + size, size * 0.2, 1.0);
                    if rng.chance(0.5) {
                        canvas.line(cx - size, cy + size, cx + size, cy - size, size * 0.2, 1.0);
                    }
                }
                ShapeKind::Checker => {
                    let cell = (size / 2.0).max(2.0);
                    for i in 0..4 {
                        for j in 0..4 {
                            if (i + j) % 2 == 0 {
                                let x0 = cx - size + i as f32 * cell;
                                let y0 = cy - size + j as f32 * cell;
                                canvas.fill_rect(x0, y0, x0 + cell, y0 + cell, 1.0);
                            }
                        }
                    }
                }
            }
        }

        // Distractor: a faint shape from a *different* class bleeding into
        // the scene; together with heavy hue jitter and low fg/bg contrast
        // this is what pushes a trained ConvNet-7 into the paper's ~80%
        // CIFAR10 accuracy regime instead of memorizing clean templates.
        let mut distractor = vec![0.0f32; plane];
        let distractor_class = (class + 1 + rng.below(CLASSES - 1)) % CLASSES;
        let distractor_alpha = rng.uniform(0.15, 0.5);
        {
            let mut canvas = Canvas::new(&mut distractor, SIDE, SIDE);
            let dx = SIDE as f32 / 2.0 + rng.uniform(-9.0, 9.0);
            let dy = SIDE as f32 / 2.0 + rng.uniform(-9.0, 9.0);
            let ds = rng.uniform(4.0, 8.0);
            match CLASS_SHAPES[distractor_class] {
                ShapeKind::Circle | ShapeKind::TwinDots => canvas.fill_circle(dx, dy, ds, 1.0),
                ShapeKind::Square | ShapeKind::Checker => {
                    canvas.fill_rect(dx - ds, dy - ds, dx + ds, dy + ds, 1.0)
                }
                ShapeKind::Triangle => canvas.fill_triangle(
                    (dx, dy - ds),
                    (dx - ds, dy + ds),
                    (dx + ds, dy + ds),
                    1.0,
                ),
                ShapeKind::Ring => canvas.ring(dx, dy, ds, ds * 0.25, 1.0),
                ShapeKind::HStripes | ShapeKind::Diagonal => {
                    canvas.line(dx - ds, dy, dx + ds, dy, 1.2, 1.0)
                }
                ShapeKind::VStripes | ShapeKind::Cross => {
                    canvas.line(dx, dy - ds, dx, dy + ds, 1.2, 1.0)
                }
            }
        }

        // Colours: heavily-jittered class hue on a textured background of
        // a random hue, with low and overlapping value ranges — the hue and
        // contrast overlap is the main source of class confusion,
        // mirroring CIFAR10's difficulty.
        let hue = CLASS_HUES[class] + rng.normal(0.0, 32.0);
        let fg = hsv_to_rgb(hue, rng.uniform(0.5, 1.0), rng.uniform(0.55, 1.0));
        let dist_hue = CLASS_HUES[distractor_class] + rng.normal(0.0, 32.0);
        let dg = hsv_to_rgb(dist_hue, rng.uniform(0.5, 1.0), rng.uniform(0.55, 1.0));
        let bg_hue = rng.uniform(0.0, 360.0);
        let bg = hsv_to_rgb(bg_hue, rng.uniform(0.1, 0.6), rng.uniform(0.1, 0.55));
        let brightness = rng.uniform(0.7, 1.15);

        let mut img = Tensor::zeros(&[3, SIDE, SIDE]);
        let data = img.as_mut_slice();
        for p in 0..plane {
            let a = mask[p];
            let d = distractor[p] * distractor_alpha * (1.0 - a);
            // Low-frequency background texture.
            let tex = 1.0 + 0.3 * ((p % SIDE) as f32 * 0.35).sin() * ((p / SIDE) as f32 * 0.29).cos();
            for c in 0..3 {
                let base = fg[c] * a + dg[c] * d + bg[c] * tex * (1.0 - a - d).max(0.0);
                data[c * plane + p] = base * brightness;
            }
        }
        if noise > 0.0 {
            for v in img.as_mut_slice() {
                *v += rng.normal(0.0, noise);
            }
        }
        img.clamp_inplace(0.0, 1.0);
        img
    }

    fn generate_partition(&self, count: usize, rng: &mut SeededRng) -> Dataset {
        let mut images = Tensor::zeros(&[count.max(1), 3, SIDE, SIDE]);
        let mut labels = Vec::with_capacity(count);
        let sample_len = 3 * SIDE * SIDE;
        for i in 0..count {
            let class = i % CLASSES;
            let sample = Self::render(class, self.spec.noise, rng);
            images.as_mut_slice()[i * sample_len..(i + 1) * sample_len]
                .copy_from_slice(sample.as_slice());
            labels.push(class);
        }
        Dataset::new(images, labels, CLASSES)
    }

    /// Generates the train/test split described by the spec.
    pub fn generate(&self) -> DataSplit {
        let mut rng = SeededRng::new(self.spec.seed.wrapping_add(0x0B1EC7));
        let mut train_rng = rng.fork(1);
        let mut test_rng = rng.fork(2);
        DataSplit {
            train: self.generate_partition(self.spec.train, &mut train_rng),
            test: self.generate_partition(self.spec.test, &mut test_rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsv_primary_colors() {
        let red = hsv_to_rgb(0.0, 1.0, 1.0);
        assert_eq!(red, [1.0, 0.0, 0.0]);
        let green = hsv_to_rgb(120.0, 1.0, 1.0);
        assert_eq!(green, [0.0, 1.0, 0.0]);
        let blue = hsv_to_rgb(240.0, 1.0, 1.0);
        assert_eq!(blue, [0.0, 0.0, 1.0]);
        let white = hsv_to_rgb(123.0, 0.0, 1.0);
        assert_eq!(white, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn hsv_wraps_hue() {
        assert_eq!(hsv_to_rgb(360.0, 1.0, 1.0), hsv_to_rgb(0.0, 1.0, 1.0));
        assert_eq!(hsv_to_rgb(-120.0, 1.0, 1.0), hsv_to_rgb(240.0, 1.0, 1.0));
    }

    #[test]
    fn render_all_classes_in_range() {
        let mut rng = SeededRng::new(1);
        for class in 0..CLASSES {
            let img = SynthObjects::render(class, 0.05, &mut rng);
            assert_eq!(img.shape(), &[3, SIDE, SIDE]);
            assert!(img.min() >= 0.0 && img.max() <= 1.0);
            assert!(img.sum() > 10.0, "class {class} rendered nearly black");
        }
    }

    #[test]
    fn different_classes_differ_in_expectation() {
        let mut rng = SeededRng::new(3);
        let mean_img = |cls: usize, rng: &mut SeededRng| {
            let mut acc = Tensor::zeros(&[3, SIDE, SIDE]);
            for _ in 0..12 {
                acc += &SynthObjects::render(cls, 0.0, rng);
            }
            acc.scale(1.0 / 12.0)
        };
        let a = mean_img(0, &mut rng); // red circle
        let b = mean_img(2, &mut rng); // blue triangle
        assert!(a.l1_distance(&b) > 30.0);
    }

    #[test]
    fn generate_deterministic_and_balanced() {
        let spec = DatasetSpec { train: 50, test: 20, seed: 6, ..Default::default() };
        let x = SynthObjects::new(spec).generate();
        let y = SynthObjects::new(spec).generate();
        assert_eq!(x, y);
        let dist = x.train.class_distribution();
        for d in dist {
            assert!((d - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_class() {
        SynthObjects::render(10, 0.0, &mut SeededRng::new(0));
    }
}
