//! Inverted dropout for regularization during training.

use super::{Layer, MatmulEngine};
use healthmon_tensor::{SeededRng, Tensor};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; during inference
/// the layer is the identity.
///
/// Holds its own [`SeededRng`] so a trained model is reproducible from the
/// construction seed.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: SeededRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} must be in [0, 1)");
        Dropout { p, training: true, rng: rng.fork(0xD80), cached_mask: None }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(input.shape());
        for m in mask.as_mut_slice() {
            *m = if self.rng.chance(keep as f64) { 1.0 / keep } else { 0.0 };
        }
        let out = input.mul(&mask);
        self.cached_mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        // Inference is always the identity, regardless of training mode.
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn set_training(&mut self, on: bool) {
        self.training = on;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_inference() {
        let mut rng = SeededRng::new(1);
        let mut l = Dropout::new(0.5, &mut rng);
        l.set_training(false);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(l.forward(&x), x);
    }

    #[test]
    fn drops_roughly_p_fraction() {
        let mut rng = SeededRng::new(2);
        let mut l = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[10_000]);
        let y = l.forward(&x);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4500..5500).contains(&zeros), "dropped {zeros}");
        // Survivors are scaled by 1/keep.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expectation_preserved() {
        let mut rng = SeededRng::new(3);
        let mut l = Dropout::new(0.3, &mut rng);
        let x = Tensor::ones(&[50_000]);
        let y = l.forward(&x);
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = SeededRng::new(4);
        let mut l = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[100]);
        let y = l.forward(&x);
        let g = l.backward(&Tensor::ones(&[100]));
        // Gradient passes exactly where the forward pass passed.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn rejects_p_one() {
        Dropout::new(1.0, &mut SeededRng::new(0));
    }
}
