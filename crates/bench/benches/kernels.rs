//! Micro-benchmarks for the numeric kernels underlying every experiment:
//! matmul, crossbar matvec vs ideal, forward/backward passes.
//!
//! Runs on the in-tree [`healthmon_bench::timing`] harness
//! (`cargo bench --bench kernels`).

use healthmon_bench::timing::TimingHarness;
use healthmon_nn::models::lenet5;
use healthmon_reram::{Crossbar, CrossbarConfig, TiledMatrix};
use healthmon_tensor::{SeededRng, Tensor};
use std::hint::black_box;

fn bench_matmul() {
    let mut group = TimingHarness::new("matmul");
    let mut rng = SeededRng::new(1);
    for &n in &[32usize, 128, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.case(&format!("square/{n}"), || black_box(a.matmul(&b)));
    }
    // The im2col GEMMs that dominate LeNet-5 / ConvNet-7 forward passes:
    // weight [F, C·K·K] times unfolded patches [C·K·K, N·OH·OW].
    for &(label, m, k, n) in &[
        ("lenet5_conv2_b16", 16usize, 150usize, 3136usize),
        ("convnet7_conv_b16", 32, 288, 4096),
    ] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        group.case(label, || black_box(a.matmul(&b)));
    }
    // The backprop companions at a dense-layer shape.
    let a = Tensor::randn(&[256, 120], &mut rng);
    let g = Tensor::randn(&[256, 64], &mut rng);
    group.case("matmul_at_dense", || black_box(a.matmul_at(&g)));
    let x = Tensor::randn(&[64, 120], &mut rng);
    group.case("matmul_bt_dense", || black_box(x.matmul_bt(&a)));
}

fn bench_crossbar_matvec() {
    let mut group = TimingHarness::new("crossbar");
    let mut rng = SeededRng::new(2);
    let w = Tensor::randn(&[128, 128], &mut rng);
    let x = Tensor::randn(&[128], &mut rng).map(|v| v.clamp(-1.0, 1.0));

    let analog = Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
    group.case("tile_matvec_8bit_converters", || black_box(analog.matvec(&x)));

    let ideal = Crossbar::program(&w, &CrossbarConfig::ideal(), &mut rng);
    group.case("tile_matvec_ideal", || black_box(ideal.matvec(&x)));

    let wt = w.transpose();
    group.case("digital_matvec_reference", || black_box(wt.matvec(&x)));

    let big = Tensor::randn(&[512, 256], &mut rng);
    let bx = Tensor::randn(&[512], &mut rng);
    let tiled = TiledMatrix::program(&big, &CrossbarConfig::default(), &mut rng);
    group.case("tiled_512x256_matvec", || black_box(tiled.matvec(&bx)));

    // Batched analog inference: an N-pattern test batch through the same
    // arrays. Post-PR this is one GEMM per tile against the cached
    // differential-conductance matrix instead of N matvec sweeps.
    let single = TiledMatrix::program(&w, &CrossbarConfig::default(), &mut rng);
    let batch = Tensor::randn(&[32, 128], &mut rng).map(|v| v.clamp(-1.0, 1.0));
    group.case("tiled_128x128_batch32", || black_box(single.matmul(&batch)));
    let big_batch = Tensor::randn(&[32, 512], &mut rng).map(|v| v.clamp(-1.0, 1.0));
    group.case("tiled_512x256_batch32", || black_box(tiled.matmul(&big_batch)));
}

fn bench_model_passes() {
    let mut group = TimingHarness::new("lenet5").samples(5);
    let mut rng = SeededRng::new(3);
    let mut net = lenet5(&mut rng);
    let batch = Tensor::rand_uniform(&[16, 1, 28, 28], 0.0, 1.0, &mut rng);
    group.case("forward_batch16", || black_box(net.forward(&batch)));
    let mut net2 = lenet5(&mut SeededRng::new(3));
    group.case("forward_backward_batch16", || {
        let out = net2.forward(&batch);
        net2.zero_grads();
        black_box(net2.backward(&Tensor::ones(out.shape())))
    });
}

fn main() {
    bench_matmul();
    bench_crossbar_matvec();
    bench_model_passes();
    healthmon_bench::timing::write_json_report();
}
