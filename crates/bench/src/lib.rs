//! Experiment regeneration harness for the paper's tables and figures.
//!
//! Each binary under `src/bin/` regenerates one table or figure; shared
//! plumbing (model training/caching, campaign construction, report
//! formatting) lives here. See `DESIGN.md` §4 for the experiment index.

pub mod harness;
#[cfg(feature = "timing")]
pub mod timing;
