//! JSON codecs for [`Shape`] and [`Tensor`] via `healthmon-serdes`.
//!
//! The wire format matches what the previous `serde` derives produced, so
//! artifact caches written by earlier builds still load:
//! a shape is a bare array (`[2,3]`), a tensor is
//! `{"shape":[2,3],"data":[...]}`. Non-finite elements round-trip through
//! the string encoding of `healthmon-serdes` (`"NaN"`, `"inf"`, `"-inf"`).

use crate::{GenericTensor, Scalar, Shape};
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};

impl ToJson for Shape {
    fn to_json(&self) -> Json {
        self.dims().to_json()
    }
}

impl FromJson for Shape {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let dims: Vec<usize> = Vec::from_json(value)?;
        if dims.is_empty() {
            return Err(JsonError::invalid("shape must have at least one dimension"));
        }
        if dims.contains(&0) {
            return Err(JsonError::invalid(format!("shape extents must be non-zero, got {dims:?}")));
        }
        Ok(Shape::new(dims))
    }
}

impl<S: Scalar> ToJson for GenericTensor<S> {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("shape".to_owned(), self.shape_obj().to_json()),
            ("data".to_owned(), self.as_slice().to_json()),
        ])
    }
}

impl<S: Scalar> FromJson for GenericTensor<S> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let shape = Shape::from_json(value.field("shape")?)?;
        let data: Vec<S> = Vec::from_json(value.field("data")?)?;
        GenericTensor::from_vec(data, shape.dims())
            .map_err(|e| JsonError::invalid(format!("tensor data does not match shape: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tensor, TensorI8};
    use healthmon_serdes::{from_str, to_string};

    #[test]
    fn shape_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(to_string(&s), "[2,3,4]");
        assert_eq!(from_str::<Shape>("[2,3,4]").unwrap(), s);
    }

    #[test]
    fn shape_rejects_degenerate() {
        assert!(from_str::<Shape>("[]").is_err());
        assert!(from_str::<Shape>("[2,0]").is_err());
        assert!(from_str::<Shape>("[-1]").is_err());
    }

    #[test]
    fn tensor_round_trip_is_bit_exact() {
        let t = Tensor::from_vec(vec![0.1, -2.5, 1.0 / 3.0, f32::MIN_POSITIVE, 0.0, -0.0], &[2, 3])
            .unwrap();
        let back: Tensor = from_str(&to_string(&t)).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_with_non_finite_values_round_trips() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0], &[4])
            .unwrap();
        assert!(!t.all_finite());
        let back: Tensor = from_str(&to_string(&t)).unwrap();
        assert!(back.as_slice()[0].is_nan());
        assert_eq!(back.as_slice()[1], f32::INFINITY);
        assert_eq!(back.as_slice()[2], f32::NEG_INFINITY);
        assert_eq!(back.as_slice()[3], 1.0);
    }

    #[test]
    fn tensor_rejects_mismatched_data() {
        assert!(from_str::<Tensor>("{\"shape\":[2,2],\"data\":[1,2,3]}").is_err());
        assert!(from_str::<Tensor>("{\"data\":[1.0]}").is_err());
        assert!(from_str::<Tensor>("{\"shape\":[1]}").is_err());
    }

    #[test]
    fn i8_tensor_round_trips() {
        let t = TensorI8::from_vec(vec![-128, -1, 0, 1, 127, 42], &[2, 3]).unwrap();
        let json = to_string(&t);
        assert_eq!(json, "{\"shape\":[2,3],\"data\":[-128,-1,0,1,127,42]}");
        let back: TensorI8 = from_str(&json).unwrap();
        assert_eq!(back, t);
        // Out-of-range integers are rejected rather than wrapped.
        assert!(from_str::<TensorI8>("{\"shape\":[1],\"data\":[128]}").is_err());
    }

    #[test]
    fn legacy_serde_format_loads() {
        // Exactly the layout serde derives produced for the same structs.
        let json = "{\"shape\":[2,2],\"data\":[1.0,2.0,3.0,4.0]}";
        let t: Tensor = from_str(json).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0);
    }
}
