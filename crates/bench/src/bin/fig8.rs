//! **Fig 8**: relationship between confidence distance and fault-model
//! accuracy across programming-variation σ, for original test images,
//! AET, C-TP and O-TP on LeNet-5. An ideal health monitor shows a wide,
//! monotone confidence-distance range that tracks the accuracy drop.

use healthmon::report::{distance, percent, TextTable};
use healthmon::Detector;
use healthmon_bench::harness::{
    campaign_accuracy, emit, models_per_level, pattern_suite, train_or_load, Benchmark,
    CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let benchmark = Benchmark::Lenet5Digits;
    let count = models_per_level();
    let mut trained = train_or_load(benchmark);
    let suite = pattern_suite(&mut trained);
    let sets = [&suite.original, &suite.aet, &suite.ctp, &suite.otp];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8 — confidence distance vs model accuracy, LeNet-5\n\
         ({count} fault models per sigma; distances are mean all-class confidence distance)\n"
    );
    let mut header = vec!["sigma".to_owned(), "accuracy".to_owned()];
    header.extend(sets.iter().map(|s| s.method().to_owned()));
    let mut table = TextTable::new(header);

    let detectors: Vec<Detector> = sets
        .iter()
        .map(|s| Detector::new(&trained.model, (*s).clone()))
        .collect();

    for sigma in benchmark.sigma_grid() {
        let fault = FaultModel::ProgrammingVariation { sigma };
        let acc = campaign_accuracy(&trained, &fault, count.min(20), CAMPAIGN_SEED);
        let mut row = vec![format!("{sigma:.2}"), percent(acc)];
        for det in &detectors {
            let d = det.campaign_distances(&trained.model, &fault, count, CAMPAIGN_SEED);
            let mean = d.iter().map(|x| x.all_classes).sum::<f32>() / d.len() as f32;
            row.push(distance(mean));
        }
        table.push_row(row);
    }
    let _ = writeln!(out, "{}", table.render());

    // Confidence-variance levels (0.01 units), the paper's resolution
    // argument: range of distance divided by 0.01.
    let _ = writeln!(out, "confidence-distance range in 0.01-unit levels:");
    for (i, set) in sets.iter().enumerate() {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for sigma in benchmark.sigma_grid() {
            let d = detectors[i].campaign_distances(
                &trained.model,
                &FaultModel::ProgrammingVariation { sigma },
                count.min(20),
                CAMPAIGN_SEED,
            );
            let mean = d.iter().map(|x| x.all_classes).sum::<f32>() / d.len() as f32;
            min = min.min(mean);
            max = max.max(mean);
        }
        let levels = ((max - min) / 0.01).round() as i32;
        let _ = writeln!(
            out,
            "  {:>8}: range [{:.4}, {:.4}] = {} levels",
            set.method(),
            min,
            max,
            levels
        );
    }
    emit("fig8", &out);
}
