//! Defect maps: where the stuck cells are.

use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::{SeededRng, Tensor};

/// One stuck cell in a 2-D weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckCell {
    /// Matrix row (word line).
    pub row: usize,
    /// Matrix column (bit line).
    pub col: usize,
    /// The weight value the cell is frozen at (0 for stuck-at-zero,
    /// ±w_max for stuck-at-one under differential mapping).
    pub value: f32,
}

/// The defect map of one crossbar-mapped weight matrix: which cells are
/// stuck, and at what effective weight value.
///
/// In deployment this comes from march-style array testing; for
/// experiments it is sampled synthetically with
/// [`DefectMap::sample_for_matrix`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DefectMap {
    cells: Vec<StuckCell>,
}

impl DefectMap {
    /// Creates a defect map from an explicit cell list.
    pub fn new(cells: Vec<StuckCell>) -> Self {
        DefectMap { cells }
    }

    /// Samples a defect map for `weights` (`[rows, cols]`): each cell is
    /// independently stuck with probability `rate`, half stuck-at-zero
    /// and half stuck-at-±max (sign random).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D or `rate` is outside `[0, 1]`.
    pub fn sample_for_matrix(weights: &Tensor, rate: f64, rng: &mut SeededRng) -> Self {
        assert_eq!(weights.ndim(), 2, "defect maps describe 2-D matrices");
        assert!((0.0..=1.0).contains(&rate), "defect rate {rate} outside [0, 1]");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        let w_max = weights.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let mut cells = Vec::new();
        for row in 0..rows {
            for col in 0..cols {
                if rng.chance(rate) {
                    let value = if rng.chance(0.5) {
                        0.0
                    } else if rng.chance(0.5) {
                        w_max
                    } else {
                        -w_max
                    };
                    cells.push(StuckCell { row, col, value });
                }
            }
        }
        DefectMap { cells }
    }

    /// The stuck cells.
    pub fn cells(&self) -> &[StuckCell] {
        &self.cells
    }

    /// Number of stuck cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the map is defect-free.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Stuck cells on physical row `row`.
    pub fn cells_in_row(&self, row: usize) -> impl Iterator<Item = &StuckCell> {
        self.cells.iter().filter(move |c| c.row == row)
    }

    /// Stuck cells on physical column `col`.
    pub fn cells_in_col(&self, col: usize) -> impl Iterator<Item = &StuckCell> {
        self.cells.iter().filter(move |c| c.col == col)
    }

    /// Applies the defects to a copy of `weights` under the identity
    /// (logical row r on physical row r) assignment: every stuck cell
    /// overrides the stored weight.
    ///
    /// # Panics
    ///
    /// Panics if a defect lies outside the matrix.
    pub fn apply(&self, weights: &Tensor) -> Tensor {
        self.apply_with_assignment(weights, &identity(weights.shape()[0]))
    }

    /// Applies the defects with an explicit logical→physical row
    /// assignment: `assignment[logical]` is the physical row the logical
    /// row is programmed onto; stuck cells live at *physical* positions.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not a permutation of the row count or
    /// a defect lies outside the matrix.
    pub fn apply_with_assignment(&self, weights: &Tensor, assignment: &[usize]) -> Tensor {
        assert_eq!(weights.ndim(), 2, "defects apply to 2-D matrices");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        assert_eq!(assignment.len(), rows, "assignment must cover every row");
        let mut seen = vec![false; rows];
        for &p in assignment {
            assert!(p < rows && !seen[p], "assignment must be a permutation");
            seen[p] = true;
        }
        // physical -> logical inverse map
        let mut logical_of = vec![0usize; rows];
        for (logical, &physical) in assignment.iter().enumerate() {
            logical_of[physical] = logical;
        }
        let mut out = weights.clone();
        for cell in &self.cells {
            assert!(cell.row < rows && cell.col < cols, "defect outside matrix");
            let logical = logical_of[cell.row];
            *out.at_mut(&[logical, cell.col]) = cell.value;
        }
        out
    }

    /// Total |Δw| the defects inflict on `weights` under an assignment —
    /// the objective the remapper minimizes.
    pub fn damage(&self, weights: &Tensor, assignment: &[usize]) -> f32 {
        let damaged = self.apply_with_assignment(weights, assignment);
        weights.l1_distance(&damaged)
    }
}

impl ToJson for StuckCell {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("row".to_owned(), self.row.to_json()),
            ("col".to_owned(), self.col.to_json()),
            ("value".to_owned(), self.value.to_json()),
        ])
    }
}

impl FromJson for StuckCell {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(StuckCell {
            row: usize::from_json(value.field("row")?)?,
            col: usize::from_json(value.field("col")?)?,
            value: f32::from_json(value.field("value")?)?,
        })
    }
}

impl ToJson for DefectMap {
    fn to_json(&self) -> Json {
        self.cells.to_json()
    }
}

impl FromJson for DefectMap {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(DefectMap { cells: Vec::from_json(value)? })
    }
}

/// The identity row assignment.
pub(crate) fn identity(rows: usize) -> Vec<usize> {
    (0..rows).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rate_roughly_respected() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[40, 40], &mut rng);
        let map = DefectMap::sample_for_matrix(&w, 0.1, &mut rng);
        let frac = map.len() as f64 / 1600.0;
        assert!((0.05..0.15).contains(&frac), "defect fraction {frac}");
    }

    #[test]
    fn apply_overrides_only_stuck_cells() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let map = DefectMap::new(vec![StuckCell { row: 0, col: 1, value: 0.0 }]);
        let damaged = map.apply(&w);
        assert_eq!(damaged.as_slice(), &[1.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn assignment_moves_defects_between_logical_rows() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let map = DefectMap::new(vec![StuckCell { row: 0, col: 0, value: 0.0 }]);
        // Logical row 0 on physical row 1, logical 1 on physical 0:
        // the defect at physical (0,0) now hits logical row 1.
        let damaged = map.apply_with_assignment(&w, &[1, 0]);
        assert_eq!(damaged.as_slice(), &[1.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn damage_is_zero_without_defects() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[5, 5], &mut rng);
        let map = DefectMap::default();
        assert_eq!(map.damage(&w, &identity(5)), 0.0);
        assert!(map.is_empty());
    }

    #[test]
    fn damage_depends_on_assignment() {
        // Defect at physical (0, 0); logical weights: row 0 has a huge
        // value at col 0, row 1 a tiny one.
        let w = Tensor::from_vec(vec![10.0, 0.0, 0.1, 0.0], &[2, 2]).unwrap();
        let map = DefectMap::new(vec![StuckCell { row: 0, col: 0, value: 0.0 }]);
        let bad = map.damage(&w, &[0, 1]); // big weight sits on defect
        let good = map.damage(&w, &[1, 0]); // small weight sits on defect
        assert!(bad > good);
        assert!((bad - 10.0).abs() < 1e-6);
        assert!((good - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation_assignment() {
        let w = Tensor::zeros(&[2, 2]);
        DefectMap::default().apply_with_assignment(&w, &[0, 0]);
    }
}
