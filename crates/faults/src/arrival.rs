//! Poisson fault-arrival sampling: how many new permanent defects show up
//! in one epoch of field operation, and where.
//!
//! Lifetime simulations age a deployed accelerator in discrete epochs;
//! within an epoch, independent rare events (electroforming failures,
//! endurance wear-out of individual cells) arrive as a Poisson process.
//! [`poisson_count`] draws the per-epoch arrival count and
//! [`sample_cell_arrivals`] places each arrival uniformly over a crossbar
//! matrix. Both are pure functions of the RNG stream, so an epoch replayed
//! from a checkpoint produces bit-identical arrivals.

use healthmon_tensor::SeededRng;
use healthmon_telemetry as tel;

// Arrivals are pure functions of the RNG stream (Stable).
static ARRIVALS_SAMPLED: tel::Counter =
    tel::Counter::new("faults.arrivals.cells", tel::Stability::Stable);

/// One newly-arrived permanent cell defect in a `[rows, cols]` matrix.
///
/// The weight-domain value of the stuck cell is left to the caller (it
/// depends on the mapped weight's sign and the tensor's full-scale value);
/// the arrival only fixes the position and the resistance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellArrival {
    /// Matrix row (word line) of the failed cell.
    pub row: usize,
    /// Matrix column (bit line) of the failed cell.
    pub col: usize,
    /// `true` for a cell frozen in the low-resistance state (stuck-at-one
    /// in weight terms), `false` for the high-resistance state
    /// (stuck-at-zero).
    pub stuck_high: bool,
}

/// Draws a Poisson-distributed arrival count with mean `lambda`.
///
/// Uses Knuth's product method for small means and a rounded normal
/// approximation above `lambda = 30` (where the product method would
/// underflow and the approximation error is far below the noise floor of
/// any campaign statistic).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson_count(lambda: f64, rng: &mut SeededRng) -> usize {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson mean must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation, clamped to the support.
        let draw = rng.normal(lambda as f32, (lambda.sqrt()) as f32);
        return draw.round().max(0.0) as usize;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut product = 1.0f64;
    loop {
        product *= rng.unit() as f64;
        if product <= limit {
            return k;
        }
        k += 1;
    }
}

/// Samples one epoch's new stuck cells for a `[rows, cols]` matrix: the
/// count is `Poisson(lambda)`, each arrival lands uniformly on a cell and
/// freezes high or low with equal probability.
///
/// Positions may repeat across calls (a cell can be hit again later); the
/// caller deduplicates against its cumulative defect map — a cell that is
/// already stuck stays stuck.
///
/// # Panics
///
/// Panics if the matrix is empty or `lambda` is negative or non-finite.
pub fn sample_cell_arrivals(
    rows: usize,
    cols: usize,
    lambda: f64,
    rng: &mut SeededRng,
) -> Vec<CellArrival> {
    assert!(rows > 0 && cols > 0, "arrival matrix must be non-empty, got {rows}x{cols}");
    let count = poisson_count(lambda, rng);
    ARRIVALS_SAMPLED.add(count as u64);
    (0..count)
        .map(|_| CellArrival {
            row: rng.below(rows),
            col: rng.below(cols),
            stuck_high: rng.chance(0.5),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_never_arrives() {
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            assert_eq!(poisson_count(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn small_lambda_mean_is_roughly_lambda() {
        let mut rng = SeededRng::new(2);
        let n = 4000;
        let total: usize = (0..n).map(|_| poisson_count(2.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((1.8..2.2).contains(&mean), "Poisson(2.0) sample mean {mean}");
    }

    #[test]
    fn large_lambda_uses_normal_branch_sanely() {
        let mut rng = SeededRng::new(3);
        let n = 500;
        let total: usize = (0..n).map(|_| poisson_count(100.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((95.0..105.0).contains(&mean), "Poisson(100) sample mean {mean}");
    }

    #[test]
    fn arrivals_are_deterministic_per_stream() {
        let a = sample_cell_arrivals(16, 8, 3.0, &mut SeededRng::new(9));
        let b = sample_cell_arrivals(16, 8, 3.0, &mut SeededRng::new(9));
        assert_eq!(a, b);
        let c = sample_cell_arrivals(16, 8, 3.0, &mut SeededRng::new(10));
        // Overwhelmingly likely to differ in count or placement.
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_stay_in_bounds() {
        let mut rng = SeededRng::new(4);
        for _ in 0..50 {
            for cell in sample_cell_arrivals(7, 3, 5.0, &mut rng) {
                assert!(cell.row < 7 && cell.col < 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_lambda() {
        poisson_count(-1.0, &mut SeededRng::new(0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_matrix() {
        sample_cell_arrivals(0, 4, 1.0, &mut SeededRng::new(0));
    }
}
