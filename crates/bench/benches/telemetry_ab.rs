//! Telemetry overhead A/B: the same workloads timed with recording
//! disabled and enabled.
//!
//! Two representative workloads are measured:
//!
//! - `campaign` — a full detection campaign (fault-model sampling, batched
//!   inference, SDC criteria) on a small MLP; exercises the detector,
//!   pattern, pool and GEMM instrumentation on the hot path.
//! - `gemm_lenet5` — the LeNet-5 conv2 im2col GEMM shape, the single
//!   heaviest kernel of the forward pass; isolates the per-call cost of
//!   the GEMM dispatch counters and spans.
//!
//! `scripts/ci.sh --bench-smoke` folds the JSON report into
//! `BENCH_pr5.json`; the off/on deltas are the overhead numbers quoted in
//! the PR description.

use healthmon::{Detector, SdcCriterion, TestPatternSet};
use healthmon_bench::timing::TimingHarness;
use healthmon_faults::FaultModel;
use healthmon_nn::models::tiny_mlp;
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::hint::black_box;

fn bench_campaign(group: &mut TimingHarness) {
    let mut rng = SeededRng::new(17);
    let net = tiny_mlp(16, 32, 8, &mut rng);
    let patterns =
        TestPatternSet::new("bench", Tensor::rand_uniform(&[24, 16], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);
    let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
    let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];

    let mut run = || black_box(detector.detection_rates(&net, &fault, 16, 5, &criteria));

    tel::set_enabled(false);
    group.case("campaign/off", &mut run);
    tel::reset();
    tel::set_enabled(true);
    group.case("campaign/on", &mut run);
    tel::set_enabled(false);
    tel::reset();
}

fn bench_gemm(group: &mut TimingHarness) {
    // LeNet-5 conv2 im2col shape: weight [16, 150] x patches [150, 3136].
    let mut rng = SeededRng::new(23);
    let a = Tensor::randn(&[16, 150], &mut rng);
    let b = Tensor::randn(&[150, 3136], &mut rng);

    let mut run = || black_box(a.matmul(&b));

    tel::set_enabled(false);
    group.case("gemm_lenet5/off", &mut run);
    tel::reset();
    tel::set_enabled(true);
    group.case("gemm_lenet5/on", &mut run);
    tel::set_enabled(false);
    tel::reset();
}

fn main() {
    let mut group = TimingHarness::new("telemetry_ab").samples(7);
    bench_campaign(&mut group);
    bench_gemm(&mut group);
    healthmon_bench::timing::write_json_report();
}
