//! Matrix multiplication kernels.
//!
//! Three variants cover everything backprop needs: `A·B`, `Aᵀ·B`, and
//! `A·Bᵀ`. All three funnel into one cache-blocked, register-tiled GEMM:
//! the right-hand operand is packed once into `NR`-column panels so the
//! micro-kernel streams it contiguously, and an `MR`×`NR` register tile
//! amortizes every packed load across [`MR`] output rows. Large problems
//! fan out across the persistent [`crate::pool`] by row block.
//!
//! # Bit-exactness
//!
//! Each output element is produced by a single `f32` accumulator walking
//! the shared dimension in ascending order — exactly the naive triple
//! loop's order. Packing and tiling only change memory layout, never the
//! float operation order, so the blocked kernels are bit-identical to the
//! naive reference, and row-parallel execution is bit-identical at any
//! thread count (chunks own disjoint output rows). The kernels also make
//! no zero-skip shortcuts: `0.0 · NaN` and `0.0 · ∞` contribute `NaN` to
//! the accumulator exactly as IEEE 754 (and the naive loop) demand.

use crate::pool;
use crate::Tensor;
use healthmon_telemetry as tel;

// GEMM call and flop counts are per-work-item and thread-count-invariant
// (Stable); the chosen fan-out and per-block kernel dispatch counts vary
// with `HEALTHMON_THREADS` (Volatile).
static GEMM_CALLS: tel::Counter = tel::Counter::new("gemm.calls", tel::Stability::Stable);
static GEMM_FLOPS: tel::Counter = tel::Counter::new("gemm.flops", tel::Stability::Stable);
static GEMM_THREADS: tel::Histogram =
    tel::Histogram::new("gemm.threads", tel::Stability::Volatile);
static GEMM_BLOCKS_AVX: tel::Counter =
    tel::Counter::new("gemm.row_blocks.avx", tel::Stability::Volatile);
static GEMM_BLOCKS_SCALAR: tel::Counter =
    tel::Counter::new("gemm.row_blocks.scalar", tel::Stability::Volatile);
static MATVEC_CALLS: tel::Counter = tel::Counter::new("gemm.matvec_calls", tel::Stability::Stable);

/// Register-tile height: output rows carried per micro-kernel call.
const MR: usize = 4;
/// Register-tile width: output columns per packed panel.
const NR: usize = 8;

/// Below this many multiply-accumulates, threading costs more than it saves.
const PAR_THRESHOLD: usize = 1 << 18;

fn thread_count(rows: usize, work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    pool::max_threads().min(rows).max(1)
}

/// Packs row-major `b` (`k×n`) into `⌈n/NR⌉` column panels, each laid out
/// `[k][NR]` contiguously and zero-padded on the right in the final panel.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let n_panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; n_panels * k * NR];
    for pi in 0..n_panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let panel = &mut packed[pi * k * NR..(pi + 1) * k * NR];
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + w];
            panel[p * NR..p * NR + w].copy_from_slice(src);
        }
    }
    packed
}

/// Packs row-major `bt` (`n×k`, the transpose of the logical `k×n` B) into
/// the same panel layout as [`pack_b`]: panel `pi`, entry `[p][jj]` holds
/// `Bᵀ[j0+jj][p]`.
fn pack_bt(bt: &[f32], k: usize, n: usize) -> Vec<f32> {
    let n_panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; n_panels * k * NR];
    for pi in 0..n_panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let panel = &mut packed[pi * k * NR..(pi + 1) * k * NR];
        for jj in 0..w {
            let row = &bt[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (p, &v) in row.iter().enumerate() {
                panel[p * NR + jj] = v;
            }
        }
    }
    packed
}

/// Computes `ROWS` consecutive output rows against one packed panel.
///
/// Accumulates the full shared dimension in ascending order into a
/// `ROWS×NR` register tile, then stores the (possibly `w`-truncated)
/// result — one pass, one accumulator per output element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_kernel<const ROWS: usize>(
    a: &[f32],
    k: usize,
    i: usize,
    panel: &[f32],
    c: &mut [f32],
    n: usize,
    c_r0: usize,
    j0: usize,
    w: usize,
) {
    let mut acc = [[0.0f32; NR]; ROWS];
    for (ii, acc_row) in acc.iter_mut().enumerate() {
        let a_row = &a[(i + ii) * k..(i + ii + 1) * k];
        // Zipped exact iterators: no bounds checks in the hot loop, and
        // `chunks_exact` tells LLVM each `b_row` is exactly NR wide.
        for (&a_ip, b_row) in a_row.iter().zip(panel.chunks_exact(NR)) {
            for (acc_v, &b_v) in acc_row.iter_mut().zip(b_row) {
                *acc_v += a_ip * b_v;
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate() {
        let dst = &mut c[(i + ii - c_r0) * n + j0..(i + ii - c_r0) * n + j0 + w];
        dst.copy_from_slice(&acc_row[..w]);
    }
}

/// AVX micro-kernels: the same `MR`×`NR` tile walked in the same
/// ascending-k order, with each output element in its own vector lane —
/// explicit 256-bit `mul` + `add` (never fused), so every lane performs
/// the identical IEEE 754 operation sequence as the portable kernel and
/// results stay bit-identical across the dispatch boundary.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{MR, NR};
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_broadcast_ss, _mm256_loadu_ps, _mm256_mul_ps,
        _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// Whether the running CPU supports AVX (checked once per process).
    pub fn available() -> bool {
        static AVX: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }

    /// Stores one accumulator row into `w` output columns.
    #[target_feature(enable = "avx")]
    unsafe fn store_row(acc: __m256, dst: &mut [f32], w: usize) {
        if w == NR {
            unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), acc) };
        } else {
            let mut buf = [0.0f32; NR];
            unsafe { _mm256_storeu_ps(buf.as_mut_ptr(), acc) };
            dst[..w].copy_from_slice(&buf[..w]);
        }
    }

    /// `MR`-row AVX tile: callers guarantee rows `i..i+MR` exist.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile_mr(
        a: &[f32],
        k: usize,
        i: usize,
        panel: &[f32],
        c: &mut [f32],
        n: usize,
        c_r0: usize,
        j0: usize,
        w: usize,
    ) {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for p in 0..k {
            unsafe {
                let b_v = _mm256_loadu_ps(panel.as_ptr().add(p * NR));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(&a0[p]), b_v));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(&a1[p]), b_v));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(&a2[p]), b_v));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(&a3[p]), b_v));
            }
        }
        for (ii, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
            let row0 = (i + ii - c_r0) * n + j0;
            unsafe { store_row(acc, &mut c[row0..row0 + w], w) };
        }
    }

    /// Single-row AVX tile for the `m % MR` remainder rows.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile_1(
        a: &[f32],
        k: usize,
        i: usize,
        panel: &[f32],
        c: &mut [f32],
        n: usize,
        c_r0: usize,
        j0: usize,
        w: usize,
    ) {
        let a0 = &a[i * k..(i + 1) * k];
        let mut acc0 = _mm256_setzero_ps();
        #[allow(clippy::needless_range_loop)] // `p` also strides the raw panel pointer
        for p in 0..k {
            unsafe {
                let b_v = _mm256_loadu_ps(panel.as_ptr().add(p * NR));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(&a0[p]), b_v));
            }
        }
        let row0 = (i - c_r0) * n + j0;
        unsafe { store_row(acc0, &mut c[row0..row0 + w], w) };
    }

    const _: () = assert!(MR == 4 && NR == 8, "AVX tiles are written for a 4x8 register block");
}

/// Sequential packed GEMM for output rows `[r0, r1)`: `c` holds those rows
/// only (`(r1-r0)×n`), `a` is the full `m×k` left operand, `packed` the
/// full panel-packed right operand.
fn gemm_rows(a: &[f32], packed: &[f32], c: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        GEMM_BLOCKS_AVX.inc();
        // SAFETY: `avx::available()` verified CPU support; the tile
        // functions uphold the same slice bounds as the portable kernel.
        unsafe { gemm_rows_avx(a, packed, c, r0, r1, k, n) };
        return;
    }
    GEMM_BLOCKS_SCALAR.inc();
    let n_panels = n.div_ceil(NR);
    for pi in 0..n_panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let panel = &packed[pi * k * NR..(pi + 1) * k * NR];
        let mut i = r0;
        while i + MR <= r1 {
            micro_kernel::<MR>(a, k, i, panel, c, n, r0, j0, w);
            i += MR;
        }
        while i < r1 {
            micro_kernel::<1>(a, k, i, panel, c, n, r0, j0, w);
            i += 1;
        }
    }
}

/// [`gemm_rows`] walking the same tiles through the AVX micro-kernels.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn gemm_rows_avx(
    a: &[f32],
    packed: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    let n_panels = n.div_ceil(NR);
    for pi in 0..n_panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let panel = &packed[pi * k * NR..(pi + 1) * k * NR];
        let mut i = r0;
        while i + MR <= r1 {
            unsafe { avx::tile_mr(a, k, i, panel, c, n, r0, j0, w) };
            i += MR;
        }
        while i < r1 {
            unsafe { avx::tile_1(a, k, i, panel, c, n, r0, j0, w) };
            i += 1;
        }
    }
}

/// Shared driver: packs nothing itself — callers pass the panel-packed
/// right operand — and splits output rows across the pool in `MR`-aligned
/// chunks when `threads > 1`.
fn gemm_driver(
    a: &[f32],
    packed: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if m * n == 0 {
        return out;
    }
    GEMM_CALLS.inc();
    GEMM_FLOPS.add(2 * (m * k * n) as u64);
    let threads = threads.clamp(1, m);
    GEMM_THREADS.record(threads as u64);
    if threads <= 1 {
        gemm_rows(a, packed, &mut out, 0, m, k, n);
    } else {
        let rows_per = m.div_ceil(threads).next_multiple_of(MR);
        pool::run_chunks(&mut out, rows_per * n, |ci, chunk| {
            let r0 = ci * rows_per;
            let r1 = (r0 + rows_per).min(m);
            gemm_rows(a, packed, chunk, r0, r1, k, n);
        });
    }
    out
}

/// A right-hand GEMM operand packed once into `NR`-column panels for
/// reuse across many products.
///
/// [`Tensor::matmul`] re-packs its right operand on every call — an
/// `O(k·n)` allocate-and-copy that is pure overhead when the same matrix
/// multiplies a stream of inputs (the crossbar layer's differential
/// conductances, reused for every inference batch). Packing once with
/// [`PackedB::pack`] and multiplying with [`Tensor::matmul_prepacked`]
/// skips that cost while producing bit-identical results: packing only
/// changes memory layout, never the float operation order.
#[derive(Debug, Clone)]
pub struct PackedB {
    packed: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs a 2-D `k×n` tensor into panel layout.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not 2-D.
    pub fn pack(b: &Tensor) -> PackedB {
        assert_eq!(b.ndim(), 2, "PackedB operand must be 2-D, got {:?}", b.shape());
        let (k, n) = (b.shape()[0], b.shape()[1]);
        PackedB { packed: pack_b(b.as_slice(), k, n), k, n }
    }

    /// Shared dimension (rows of the packed matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns (columns of the packed matrix).
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Tensor {
    /// Matrix product `self · rhs` for 2-D tensors (`m×k` times `k×n`).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let threads = if self.ndim() == 2 && rhs.ndim() == 2 {
            let (m, k) = (self.shape()[0], self.shape()[1]);
            thread_count(m, m * k * rhs.shape()[1])
        } else {
            1 // shape asserts below produce the real error
        };
        self.matmul_with_threads(rhs, threads)
    }

    /// [`Tensor::matmul`] with an explicit thread count (clamped to
    /// `[1, m]`) — for determinism tests and callers that must bound their
    /// parallelism. Results are bit-identical at any thread count.
    pub fn matmul_with_threads(&self, rhs: &Tensor, threads: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(rhs.ndim(), 2, "matmul rhs must be 2-D, got {:?}", rhs.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let packed = pack_b(rhs.as_slice(), k, n);
        let out = gemm_driver(self.as_slice(), &packed, m, k, n, threads);
        Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent by construction")
    }

    /// Matrix product `self · rhs` against a pre-packed right operand —
    /// bit-identical to `self.matmul(rhs)` with the packing cost paid
    /// once at [`PackedB::pack`] time instead of per call.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or its column count differs from
    /// `rhs.k()`.
    pub fn matmul_prepacked(&self, rhs: &PackedB) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_prepacked lhs must be 2-D, got {:?}", self.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, rhs.k, "matmul_prepacked inner dimension mismatch: {k} vs {}", rhs.k);
        let threads = thread_count(m, m * k * rhs.n);
        let out = gemm_driver(self.as_slice(), &rhs.packed, m, k, rhs.n, threads);
        Tensor::from_vec(out, &[m, rhs.n])
            .expect("matmul_prepacked output shape is consistent by construction")
    }

    /// Matrix product `selfᵀ · rhs` (`k×m`ᵀ times `k×n` → `m×n`).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, rhs: &Tensor) -> Tensor {
        let threads = if self.ndim() == 2 && rhs.ndim() == 2 {
            let (k, m) = (self.shape()[0], self.shape()[1]);
            thread_count(m, m * k * rhs.shape()[1])
        } else {
            1
        };
        self.matmul_at_with_threads(rhs, threads)
    }

    /// [`Tensor::matmul_at`] with an explicit thread count; bit-identical
    /// at any thread count.
    pub fn matmul_at_with_threads(&self, rhs: &Tensor, threads: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_at lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul_at rhs must be 2-D");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul_at shared dimension mismatch: {k} vs {k2}");
        // Materializing the m×k transpose costs O(mk) — negligible next to
        // the O(mkn) product — and buys the contiguous-row fast path.
        let at = self.transpose();
        let packed = pack_b(rhs.as_slice(), k, n);
        let out = gemm_driver(at.as_slice(), &packed, m, k, n, threads);
        Tensor::from_vec(out, &[m, n]).expect("matmul_at output shape is consistent")
    }

    /// Matrix product `self · rhsᵀ` (`m×k` times `n×k`ᵀ → `m×n`) without
    /// materializing the transpose: packing transposes on the fly.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        let threads = if self.ndim() == 2 && rhs.ndim() == 2 {
            let (m, k) = (self.shape()[0], self.shape()[1]);
            thread_count(m, m * k * rhs.shape()[0])
        } else {
            1
        };
        self.matmul_bt_with_threads(rhs, threads)
    }

    /// [`Tensor::matmul_bt`] with an explicit thread count; bit-identical
    /// at any thread count.
    pub fn matmul_bt_with_threads(&self, rhs: &Tensor, threads: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_bt lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul_bt rhs must be 2-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul_bt shared dimension mismatch: {k} vs {k2}");
        let packed = pack_bt(rhs.as_slice(), k, n);
        let out = gemm_driver(self.as_slice(), &packed, m, k, n, threads);
        Tensor::from_vec(out, &[m, n]).expect("matmul_bt output shape is consistent")
    }

    /// Matrix–vector product `self · v` for a 2-D tensor and 1-D vector.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D, `v` is not 1-D, or dimensions mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matvec matrix must be 2-D");
        assert_eq!(v.ndim(), 1, "matvec vector must be 1-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec dimension mismatch: {k} vs {}", v.len());
        MATVEC_CALLS.inc();
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m]).expect("matvec output shape is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "mismatch: {x} vs {y}");
        }
    }

    fn assert_bit_identical(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shapes differ");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
        }
    }

    /// Odd shapes that exercise every tiling edge: unit, tall/skinny,
    /// wide, and non-multiples of both MR and NR.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 2),
        (7, 4, 9),
        (16, 16, 16),
        (1, 37, 65),
        (65, 1, 7),
        (13, 29, 1),
        (33, 17, 41),
    ];

    #[test]
    fn matmul_hand_example() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&a.matmul(&eye), &a, 1e-6);
        assert_close(&eye.matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matmul_bit_identical_to_naive() {
        let mut rng = SeededRng::new(11);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_bit_identical(&a.matmul(&b), &naive_matmul(&a, &b), "matmul");
        }
    }

    #[test]
    fn matmul_at_bit_identical_to_naive() {
        let mut rng = SeededRng::new(17);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn(&[k, m], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_bit_identical(
                &a.matmul_at(&b),
                &naive_matmul(&a.transpose(), &b),
                "matmul_at",
            );
        }
    }

    #[test]
    fn matmul_bt_bit_identical_to_naive() {
        let mut rng = SeededRng::new(19);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[n, k], &mut rng);
            assert_bit_identical(
                &a.matmul_bt(&b),
                &naive_matmul(&a, &b.transpose()),
                "matmul_bt",
            );
        }
    }

    #[test]
    fn matmul_thread_count_does_not_change_bits() {
        let mut rng = SeededRng::new(13);
        for &(m, k, n) in &[(33, 17, 41), (96, 96, 96), (5, 64, 3)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let one = a.matmul_with_threads(&b, 1);
            for threads in [2, 7] {
                assert_bit_identical(
                    &one,
                    &a.matmul_with_threads(&b, threads),
                    "matmul across thread counts",
                );
            }
            let bt = Tensor::randn(&[n, k], &mut rng);
            let one_bt = a.matmul_bt_with_threads(&bt, 1);
            let at = Tensor::randn(&[k, m], &mut rng);
            let one_at = at.matmul_at_with_threads(&b, 1);
            for threads in [2, 7] {
                assert_bit_identical(
                    &one_bt,
                    &a.matmul_bt_with_threads(&bt, threads),
                    "matmul_bt across thread counts",
                );
                assert_bit_identical(
                    &one_at,
                    &at.matmul_at_with_threads(&b, threads),
                    "matmul_at across thread counts",
                );
            }
        }
    }

    #[test]
    fn matmul_prepacked_bit_identical_to_matmul() {
        let mut rng = SeededRng::new(23);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let packed = PackedB::pack(&b);
            assert_eq!((packed.k(), packed.n()), (k, n));
            assert_bit_identical(&a.matmul_prepacked(&packed), &a.matmul(&b), "prepacked");
        }
        // Cross PAR_THRESHOLD so the pooled path is exercised too.
        let a = Tensor::randn(&[96, 96], &mut rng);
        let b = Tensor::randn(&[96, 96], &mut rng);
        assert_bit_identical(
            &a.matmul_prepacked(&PackedB::pack(&b)),
            &a.matmul(&b),
            "prepacked parallel",
        );
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross PAR_THRESHOLD (work = 96*96*96 ≈ 885k).
        let mut rng = SeededRng::new(13);
        let a = Tensor::randn(&[96, 96], &mut rng);
        let b = Tensor::randn(&[96, 96], &mut rng);
        assert_bit_identical(&a.matmul(&b), &naive_matmul(&a, &b), "parallel matmul");
    }

    #[test]
    fn matmul_propagates_nan_through_zero() {
        // The seed kernel skipped a_ip == 0.0 rows, silently dropping the
        // IEEE-mandated NaN from 0·NaN and 0·∞. The blocked kernel must
        // propagate it, exactly like the naive reference.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 2.0], &[2, 1]).unwrap();
        assert!(a.matmul(&b).as_slice()[0].is_nan(), "0·NaN must yield NaN");
        let binf = Tensor::from_vec(vec![f32::INFINITY, 2.0], &[2, 1]).unwrap();
        assert!(a.matmul(&binf).as_slice()[0].is_nan(), "0·∞ must yield NaN");
        // matmul_at reads the same values through the transposed layout.
        let at = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]).unwrap();
        assert!(at.matmul_at(&b).as_slice()[0].is_nan(), "matmul_at must propagate NaN");
        let bt = Tensor::from_vec(vec![f32::NAN, 2.0], &[1, 2]).unwrap();
        assert!(a.matmul_bt(&bt).as_slice()[0].is_nan(), "matmul_bt must propagate NaN");
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut rng = SeededRng::new(5);
        let a = Tensor::randn(&[6, 3], &mut rng);
        let b = Tensor::randn(&[6, 4], &mut rng);
        assert_close(&a.matmul_at(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut rng = SeededRng::new(6);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[7, 3], &mut rng);
        assert_close(&a.matmul_bt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SeededRng::new(8);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let v = Tensor::randn(&[6], &mut rng);
        let via_matmul = a.matmul(&v.reshape(&[6, 1]).unwrap());
        let direct = a.matvec(&v);
        for i in 0..4 {
            assert!((direct.as_slice()[i] - via_matmul.as_slice()[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
