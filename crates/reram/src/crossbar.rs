//! A single crossbar tile: differential conductance pairs, DAC/ADC
//! conversion, and device-level fault injection.

use crate::quant::{narrow_i16, round_fast, ROUND_MAGIC_LIMIT};
use crate::{CrossbarConfig, IrDropModel, ParityCheck, Quantizer, ScrubOutcome};
use healthmon_tensor::{fastmath, intacc, pool, PackedB, SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::sync::OnceLock;

// Crossbar telemetry counts deterministic work items (programming, cache
// traffic, converter clipping over bit-identical GEMM outputs), so all
// metrics here are Stable: bit-identical at any HEALTHMON_THREADS.
static XBAR_PROGRAMS: tel::Counter =
    tel::Counter::new("reram.program.tiles", tel::Stability::Stable);
static XBAR_PROGRAM_CELLS: tel::Counter =
    tel::Counter::new("reram.program.cells", tel::Stability::Stable);
static CACHE_LOOKUPS: tel::Counter =
    tel::Counter::new("reram.cache.lookups", tel::Stability::Stable);
static CACHE_BUILDS: tel::Counter =
    tel::Counter::new("reram.cache.builds", tel::Stability::Stable);
static CACHE_INVALIDATIONS: tel::Counter =
    tel::Counter::new("reram.cache.invalidations", tel::Stability::Stable);
static DAC_SAMPLES: tel::Counter = tel::Counter::new("reram.dac.samples", tel::Stability::Stable);
static DAC_CLIPPED: tel::Counter = tel::Counter::new("reram.dac.clipped", tel::Stability::Stable);
static DAC_SATURATION: tel::Gauge =
    tel::Gauge::new("reram.dac.saturation_max", tel::Stability::Stable);
static ADC_SAMPLES: tel::Counter = tel::Counter::new("reram.adc.samples", tel::Stability::Stable);
static ADC_CLIPPED: tel::Counter = tel::Counter::new("reram.adc.clipped", tel::Stability::Stable);
static ADC_SATURATION: tel::Gauge =
    tel::Gauge::new("reram.adc.saturation_max", tel::Stability::Stable);
// Checkup-pipeline latency attribution: wall-clock time spent in each
// analog stage of a matmul. Wall-clock measurements are scheduling- and
// machine-dependent, so unlike the work counters above these are
// Volatile — excluded from the stable byte-comparison surface and
// served live through the metrics exporter (p50/p95/p99).
static PHASE_DAC_NS: tel::Histogram =
    tel::Histogram::new("phase.dac_ns", tel::Stability::Volatile);
static PHASE_ACCUMULATE_NS: tel::Histogram =
    tel::Histogram::new("phase.accumulate_ns", tel::Stability::Volatile);
static PHASE_ADC_NS: tel::Histogram =
    tel::Histogram::new("phase.adc_ns", tel::Stability::Volatile);
static IR_DROP_APPLIED: tel::Counter =
    tel::Counter::new("reram.ir_drop.applied", tel::Stability::Stable);
static IR_DROP_MIN_FACTOR: tel::Gauge =
    tel::Gauge::new("reram.ir_drop.attenuation_min", tel::Stability::Stable);
static CELLS_STUCK: tel::Counter = tel::Counter::new("reram.cells.stuck", tel::Stability::Stable);
static DISTURB_EVENTS: tel::Counter =
    tel::Counter::new("reram.disturb.events", tel::Stability::Stable);
static DRIFT_EVENTS: tel::Counter =
    tel::Counter::new("reram.drift.events", tel::Stability::Stable);
static CELLS_FLIPPED: tel::Counter =
    tel::Counter::new("reram.cells.flipped", tel::Stability::Stable);
// DAC-code cache traffic: the integer-domain execution state (quantized
// conductance codes + column sums + row-block drop factors) cached
// alongside the differential matrix. Counted only on tiles whose config
// is integer-path capable, so the names stay honest on f32-only tiles.
static DAC_CACHE_HITS: tel::Counter =
    tel::Counter::new("reram.dac.cache.hits", tel::Stability::Stable);
static DAC_CACHE_MISSES: tel::Counter =
    tel::Counter::new("reram.dac.cache.misses", tel::Stability::Stable);
static DAC_CACHE_INVALIDATIONS: tel::Counter =
    tel::Counter::new("reram.dac.cache.invalidations", tel::Stability::Stable);
static INT_ROWBLOCKS: tel::Counter =
    tel::Counter::new("reram.int8.rowblocks", tel::Stability::Stable);

/// Records converter saturation stats for one quantization pass: how many
/// samples fell outside `[-range, range]` (and were clamped by the
/// quantizer) plus the worst |value|/range ratio seen. Callers pre-gate on
/// [`tel::enabled`], so the scan never runs when telemetry is off.
fn record_converter(
    values: &[f32],
    range: f32,
    samples: &'static tel::Counter,
    clipped: &'static tel::Counter,
    saturation: &'static tel::Gauge,
) {
    let mut clip = 0u64;
    let mut worst = 0.0f32;
    for &v in values {
        let a = v.abs();
        if a > range {
            clip += 1;
        }
        if a > worst {
            worst = a;
        }
    }
    samples.add(values.len() as u64);
    clipped.add(clip);
    if range > 0.0 {
        saturation.set_max(f64::from(worst / range));
    }
}

/// Rounds a positive normal float up to the next power of two (identity
/// for exact powers of two). Used by the exact cell-storage mode: dividing
/// and re-multiplying by a power of two only shifts the exponent, so the
/// weight → conductance → weight round trip is bitwise lossless.
fn round_up_pow2(x: f32) -> f32 {
    let bits = x.to_bits();
    if bits & 0x007F_FFFF == 0 {
        return x;
    }
    let up = f32::from_bits((bits & 0x7F80_0000) + 0x0080_0000);
    if up.is_finite() {
        up
    } else {
        x
    }
}

/// Word lines per integer-kernel partial sum: IR-drop factors apply at
/// this granularity, and `reram.int8.rowblocks` counts these units.
const ROW_BLOCK: usize = 32;

/// Below this many multiply-accumulates the integer path stays on one
/// thread (same rationale as the GEMM threshold in `healthmon-tensor`).
const INT_PAR_THRESHOLD: usize = 1 << 18;

/// Everything one inference through the tile needs, derived lazily from
/// the conductance planes and invalidated as a unit by every conductance
/// mutator (fault injection, disturb, drift, scrub correction, IR-drop
/// model changes).
#[derive(Debug, Clone)]
pub(crate) struct ExecState {
    /// Effective weight matrix `(g_pos − g_neg) · scale`, with any stored
    /// IR-drop attenuation folded in per cell — the `f32` reference path.
    /// Built on first use: integer-capable tiles often never touch it
    /// (weight read-back and the `f32` path are the only consumers).
    diff: OnceLock<Tensor>,
    /// `diff` panel-packed once on first `f32`-path product, so repeated
    /// products skip the per-call pack that dominated small-tile matvec
    /// cost. Lazy because integer-path tiles never touch it — campaign
    /// workloads build thousands of short-lived tiles and must not pay
    /// for a GEMM operand they will not use.
    packed: OnceLock<PackedB>,
    /// Integer-domain state when the config supports it (see
    /// [`CrossbarConfig::integer_path_capable`]); `None` also when any
    /// conductance is non-finite, which only the `f32` path propagates
    /// faithfully.
    pub(crate) int: Option<IntState>,
}


/// Cached integer-domain image of the tile: differential conductance
/// codes and the precomputed sums the affine DAC→weight mapping needs.
///
/// With DAC level `idx` representing voltage `lo + idx·step_x` and code
/// `k` representing weight `k·step_w`, one output is
/// `step_w·(step_x·Σ idx_i·k_ij + lo·Σ k_ij)` — an exact `i32` dot plus a
/// per-column affine correction from the cached column sums.
#[derive(Debug, Clone)]
pub(crate) struct IntState {
    /// `[rows × cols_padded]` signed differential codes, row-major,
    /// zero-padded to a [`intacc::LANES`] multiple.
    codes: Vec<i16>,
    /// Per-row-block column sums `[n_blocks × cols_padded]`, for the
    /// IR-drop path's per-block affine correction.
    block_colsums: Vec<i32>,
    /// Whole-tile column sums `[cols_padded]`.
    colsums: Vec<i32>,
    /// Per-(row block, column) mean IR-drop factors, present when a model
    /// with non-zero wire resistance is stored.
    drop: Option<Vec<f32>>,
    /// Weight-domain value of one conductance-code step.
    step_w: f32,
    cols_padded: usize,
}

/// Program-time integer image of a pristine tile: the signed differential
/// conductance codes (`[rows, cols_padded]`) plus their column sums, laid
/// out exactly as [`IntState`] consumes them. Valid only while the
/// conductance planes are untouched since programming — every mutator
/// drops it.
#[derive(Debug, Clone)]
struct IntSeed {
    codes: Vec<i16>,
    block_colsums: Vec<i32>,
    colsums: Vec<i32>,
}

/// The DAC level grid of a tile: voltage of level `idx` is
/// `lo + idx·step`. Derived from `input_range` and `dac_bits` only, so
/// tiles sharing both (every tile of a [`crate::TiledMatrix`] unless a
/// caller re-calibrated one) share codes and the whole input can be
/// quantized once per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DacGrid {
    lo: f32,
    hi: f32,
    step: f32,
    inv_step: f32,
}

impl DacGrid {
    /// Quantizes raw activations to DAC level indices, or `None` if any
    /// value is NaN — NaN must poison whole output rows, which only the
    /// `f32` reference path reproduces.
    pub(crate) fn codes_for(&self, values: &[f32]) -> Option<Vec<i32>> {
        // 8-lane select loop with no early exit, so the compiler can keep
        // it branch-free. The ·0.0 probe goes sticky-NaN only for NaN
        // inputs: ±∞ clamps to a finite rail first, which is the allowed
        // saturation behaviour, while NaN survives `clamp` and must poison
        // whole output rows — only the `f32` reference path does that.
        // The level index is read straight out of the magic-add mantissa
        // (codes are non-negative and < 2²², so the low bits ARE the
        // rounded integer) — both `.round()` and an `as i32` cast lower
        // to serial scalar code that kept this loop at ~3 ns/element.
        const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³
        let mut codes = vec![0i32; values.len()];
        let mut probe = [0.0f32; 8];
        let mut chunks = values.chunks_exact(8);
        let mut out = codes.chunks_exact_mut(8);
        for (ch, dst) in chunks.by_ref().zip(out.by_ref()) {
            for k in 0..8 {
                let clamped = ch[k].clamp(self.lo, self.hi);
                probe[k] += clamped * 0.0;
                let v = (clamped - self.lo) * self.inv_step;
                let shifted = v + MAGIC;
                // Ties-to-even from the magic add, bumped up on exact .5
                // ties to match `round`'s half-away rule.
                let bump = i32::from(v - (shifted - MAGIC) == 0.5);
                dst[k] = (shifted.to_bits() & 0x3F_FFFF) as i32 + bump;
            }
        }
        let mut tail_ok = true;
        for (&v, dst) in chunks.remainder().iter().zip(out.into_remainder()) {
            let clamped = v.clamp(self.lo, self.hi);
            tail_ok &= !clamped.is_nan();
            *dst = round_fast((clamped - self.lo) * self.inv_step) as i32;
        }
        if tail_ok && probe.iter().all(|p| *p == 0.0) {
            Some(codes)
        } else {
            None
        }
    }
}

/// A permanent device fault affecting one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Cell frozen in the high-resistance state (conductance = `g_min`),
    /// i.e. stuck-at-zero in weight terms.
    StuckLow,
    /// Cell frozen in the low-resistance state (conductance = `g_max`),
    /// i.e. stuck-at-one.
    StuckHigh,
}

/// One programmed crossbar tile storing a weight matrix `[rows, cols]` as
/// differential conductance pairs.
///
/// The tile keeps the scaling needed to map analog bit-line currents back
/// into weight-domain dot products, so [`Crossbar::matvec`] is directly
/// comparable to an ideal `wᵀx`.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    rows: usize,
    cols: usize,
    /// Positive-path conductances, `[rows, cols]`.
    g_pos: Tensor,
    /// Negative-path conductances, `[rows, cols]`.
    g_neg: Tensor,
    /// Weight-domain scale: `w = (g_pos − g_neg) * scale`.
    scale: f32,
    /// Largest |input| the DAC was calibrated for.
    input_range: f32,
    /// Stored IR-drop model (non-destructive: the pristine conductances
    /// stay untouched and the attenuation is folded into the execution
    /// state on rebuild). `None` when no drop is modelled.
    ir_drop: Option<IrDropModel>,
    /// Lazily-computed execution state shared by every inference through
    /// the tile: the effective weight matrix `(g_pos − g_neg) · scale`
    /// (in exact cell mode bitwise the programmed weights, making the
    /// crossbar product bit-identical to the digital one), its packed-GEMM
    /// image, and — on integer-capable configs — the quantized conductance
    /// codes of the i32 fast path. Every conductance mutator replaces the
    /// cell with a fresh empty one, so stale state can never be read after
    /// fault injection.
    exec_cache: OnceLock<ExecState>,
    /// Pristine integer image captured at program time: on noise-free
    /// integer-capable configs every conductance lands exactly on the cell
    /// grid, so programming emits the signed codes and their column sums
    /// directly and the first execution-state build is a memcpy instead of
    /// a full re-quantization scan of both planes. Any conductance
    /// mutation clears it (see [`Crossbar::invalidate_cache`]); the planes
    /// then become the only source of truth again.
    int_seed: Option<Box<IntSeed>>,
    /// Optional online soft-error tolerance: XOR checksum state over the
    /// two conductance planes (`[g_pos, g_neg]`), modelling the spare
    /// checksum columns programmed alongside the weights. `None` (the
    /// default) keeps the unhardened tile byte-identical to pre-parity
    /// behaviour at zero cost.
    parity: Option<Box<[ParityCheck; 2]>>,
}

impl Crossbar {
    /// Programs a weight matrix (`[rows, cols]`, at most the tile
    /// geometry) into a fresh tile, applying cell quantization and the
    /// configured lognormal write noise.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D, exceeds the tile geometry, or the
    /// config is invalid.
    pub fn program(weights: &Tensor, config: &CrossbarConfig, rng: &mut SeededRng) -> Self {
        config.validate();
        assert_eq!(weights.ndim(), 2, "crossbar stores a 2-D weight matrix");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        assert!(
            rows <= config.rows && cols <= config.cols,
            "weights {rows}x{cols} exceed tile geometry {}x{}",
            config.rows,
            config.cols
        );
        // Fused 8-lane sweep: the per-lane max reduction vectorizes
        // (unlike a single-accumulator fold, which LLVM must keep serial),
        // and the ·0.0 probe turns any NaN/∞ into a sticky NaN per lane —
        // one pass yields both the programming full scale and the
        // finiteness verdict the quantized path branches on.
        let ws_all = weights.as_slice();
        let mut max_lanes = [0.0f32; 8];
        let mut probe = [0.0f32; 8];
        let mut chunks = ws_all.chunks_exact(8);
        for ch in chunks.by_ref() {
            for k in 0..8 {
                let a = ch[k].abs();
                max_lanes[k] = max_lanes[k].max(a);
                probe[k] += a * 0.0;
            }
        }
        let mut raw_max = 0.0f32;
        let mut tail_finite = true;
        for &v in chunks.remainder() {
            raw_max = raw_max.max(v.abs());
            tail_finite &= v.is_finite();
        }
        for &m in &max_lanes {
            raw_max = raw_max.max(m);
        }
        let all_finite = tail_finite && probe.iter().all(|p| *p == 0.0);
        let raw_max = raw_max.max(f32::MIN_POSITIVE);
        // Exact cell mode: snapping the full scale to a power of two makes
        // |w|/w_max and the later ·scale re-expansion pure exponent
        // shifts, so programming is bitwise lossless.
        let w_max = if config.exact_cells() { round_up_pow2(raw_max) } else { raw_max };
        // w = (g+ − g−)·scale with g ∈ [g_min, g_max]; full-scale weight
        // uses the full conductance window.
        let window = config.g_max - config.g_min;
        let scale = w_max / window;
        let mut g_pos = Tensor::zeros(&[rows, cols]);
        let mut g_neg = Tensor::zeros(&[rows, cols]);
        let mut int_seed = None;
        if config.exact_cells() {
            for ((gp, gn), &w) in g_pos
                .as_mut_slice()
                .iter_mut()
                .zip(g_neg.as_mut_slice())
                .zip(weights.as_slice())
            {
                let magnitude = (w.abs() / w_max) * window; // ∈ [0, window]
                if w >= 0.0 {
                    *gp = config.g_min + magnitude;
                    *gn = config.g_min;
                } else {
                    *gp = config.g_min;
                    *gn = config.g_min + magnitude;
                }
            }
        } else {
            // Quantized cells in the index domain: the cell quantizer's
            // level choice for `g_min + |w|·window/w_max` reduces to
            // `idx = round(|w|·max_code/w_max)` — one multiply per cell —
            // and `g = g_min + idx·step_g` reconstructs the identical grid
            // point. On noise-free integer-capable configs the signed level
            // index IS the differential conductance code of the i32 fast
            // path, so programming emits the DAC-code cache seed as a
            // by-product instead of leaving `build_int` to re-derive every
            // code from the planes.
            let max_code = (1i32 << config.cell_bits) - 1;
            let step_g = window / max_code as f32;
            let code_scale = max_code as f32 / w_max;
            let step_w = step_g * scale;
            let seedable = config.integer_path_capable()
                && config.write_noise == 0.0
                && step_w.is_finite()
                && step_w > 0.0;
            let cols_padded = cols.next_multiple_of(intacc::LANES);
            let gp = g_pos.as_mut_slice();
            let gn = g_neg.as_mut_slice();
            let ws = weights.as_slice();
            let mut codes = None;
            if code_scale.is_finite() && all_finite && (max_code as f32) < ROUND_MAGIC_LIMIT {
                // Branch-light select form the compiler can vectorize:
                // zip iteration (indexed stores into the two planes leave
                // bounds checks that block the vectorizer), `round_fast`
                // instead of `.round()`'s serial scalar lowering, and on
                // the seeded path `narrow_i16` instead of a scalarizing
                // float→i16 cast. One fused pass derives the conductance
                // grid point and the signed seed code from the same
                // rounded level, so the seed and a later scan of the
                // planes agree on every index.
                let fmax = max_code as f32;
                if seedable {
                    let mut image = vec![0i16; rows * cols_padded];
                    for r in 0..rows {
                        let base = r * cols;
                        let row = &mut image[r * cols_padded..r * cols_padded + cols];
                        let wr = &ws[base..base + cols];
                        let gpr = &mut gp[base..base + cols];
                        let gnr = &mut gn[base..base + cols];
                        for (((&w, p), n), code) in
                            wr.iter().zip(gpr).zip(gnr).zip(row)
                        {
                            let idx = round_fast(w.abs() * code_scale).min(fmax);
                            let g = config.g_min + idx * step_g;
                            let pos = w >= 0.0;
                            *p = if pos { g } else { config.g_min };
                            *n = if pos { config.g_min } else { g };
                            *code = narrow_i16(idx.copysign(w));
                        }
                    }
                    codes = Some(image);
                } else {
                    for ((&w, p), n) in ws.iter().zip(gp.iter_mut()).zip(gn.iter_mut()) {
                        let g = config.g_min
                            + round_fast(w.abs() * code_scale).min(fmax) * step_g;
                        let pos = w >= 0.0;
                        *p = if pos { g } else { config.g_min };
                        *n = if pos { config.g_min } else { g };
                    }
                }
            } else {
                // Non-finite weights, a degenerate full scale, or a cell
                // grid too fine for `round_fast`: reproduce the reference
                // semantics exactly via the cell quantizer. NaN/∞ must
                // poison the planes, and no seed is emitted, because
                // `NaN as i32` in Rust saturates to 0, which would
                // silently erase the poison from the integer image.
                let q = Quantizer::new(config.g_min, config.g_max, config.cell_bits);
                for (i, &w) in ws.iter().enumerate() {
                    let magnitude = (w.abs() / w_max) * window;
                    let (p, n) = if w >= 0.0 {
                        (config.g_min + magnitude, config.g_min)
                    } else {
                        (config.g_min, config.g_min + magnitude)
                    };
                    gp[i] = q.quantize(p);
                    gn[i] = q.quantize(n);
                }
            }
            int_seed = codes.map(|codes| {
                let n_blocks = rows.div_ceil(ROW_BLOCK);
                let mut block_colsums = vec![0i32; n_blocks * cols_padded];
                let mut colsums = vec![0i32; cols_padded];
                for r in 0..rows {
                    let block = &mut block_colsums[(r / ROW_BLOCK) * cols_padded..];
                    for c in 0..cols_padded {
                        let k = i32::from(codes[r * cols_padded + c]);
                        block[c] += k;
                        colsums[c] += k;
                    }
                }
                Box::new(IntSeed { codes, block_colsums, colsums })
            });
        }
        if config.write_noise > 0.0 {
            // Bulk write-noise pass: one block-sampled lognormal draw per
            // cell instead of two scalar draws inside the programming loop.
            let mut noise = vec![0.0f32; g_pos.len() + g_neg.len()];
            rng.fill_lognormal(&mut noise, 0.0, config.write_noise);
            for (g, &f) in g_pos
                .as_mut_slice()
                .iter_mut()
                .chain(g_neg.as_mut_slice())
                .zip(&noise)
            {
                *g = (*g * f).clamp(config.g_min, config.g_max);
            }
        }
        XBAR_PROGRAMS.inc();
        XBAR_PROGRAM_CELLS.add((rows * cols) as u64);
        Crossbar {
            config: *config,
            rows,
            cols,
            g_pos,
            g_neg,
            scale,
            input_range: 1.0,
            ir_drop: None,
            exec_cache: OnceLock::new(),
            int_seed,
            parity: None,
        }
    }

    /// The execution state (differential matrix, packed GEMM operand,
    /// integer codes), computed on first use and cached until the next
    /// conductance mutation.
    pub(crate) fn exec(&self) -> &ExecState {
        CACHE_LOOKUPS.inc();
        let capable = self.config.integer_path_capable();
        if capable && self.exec_cache.get().is_some() {
            DAC_CACHE_HITS.inc();
        }
        self.exec_cache.get_or_init(|| {
            CACHE_BUILDS.inc();
            if capable {
                DAC_CACHE_MISSES.inc();
            }
            self.build_exec()
        })
    }

    /// The effective weight matrix `(g_pos − g_neg) · scale` (IR drop
    /// folded in), shared by every inference through the tile. Built on
    /// first use inside the cached execution state.
    fn diff(&self) -> &Tensor {
        let exec = self.exec();
        exec.diff.get_or_init(|| {
            let s = self.scale;
            match &self.ir_drop {
                // Per-cell attenuation of both planes — the same math the
                // destructive application used, now recomputed from
                // pristine conductances so repeated model changes never
                // compound.
                Some(model) => {
                    let gp = model.attenuate(&self.g_pos);
                    let gn = model.attenuate(&self.g_neg);
                    gp.zip_map(&gn, move |p, n| (p - n) * s)
                }
                None => self.g_pos.zip_map(&self.g_neg, move |p, n| (p - n) * s),
            }
        })
    }

    /// The panel-packed GEMM operand of [`Crossbar::diff`], built on first
    /// `f32`-path product.
    fn packed(&self) -> &PackedB {
        let exec = self.exec();
        exec.packed.get_or_init(|| PackedB::pack(self.diff()))
    }

    /// Drops the cached execution state after a conductance (or IR-drop
    /// model) mutation.
    fn invalidate_cache(&mut self) {
        self.exec_cache = OnceLock::new();
        // The program-time code image no longer matches the planes; from
        // here on the integer state must be re-derived from conductances.
        self.int_seed = None;
        CACHE_INVALIDATIONS.inc();
        if self.config.integer_path_capable() {
            DAC_CACHE_INVALIDATIONS.inc();
        }
    }

    fn build_exec(&self) -> ExecState {
        ExecState { diff: OnceLock::new(), packed: OnceLock::new(), int: self.build_int() }
    }

    /// Extracts the integer-domain image of the tile, or `None` when the
    /// config is not integer-capable or a conductance is non-finite (a
    /// NaN-poisoned weight must keep poisoning outputs, which only the
    /// `f32` path guarantees).
    ///
    /// Conductances land exactly on the cell grid at program time, so on
    /// an unmutated tile the codes are lossless; post-fault conductances
    /// (disturb/drift/flip and in-window stuck magnitudes) round to the
    /// nearest code — a read-quantization error bounded by half a cell
    /// step. The window endpoints are grid points, so stuck-at faults stay
    /// exactly visible.
    fn build_int(&self) -> Option<IntState> {
        if !self.config.integer_path_capable() {
            return None;
        }
        let window = self.config.g_max - self.config.g_min;
        let max_code = (1i32 << self.config.cell_bits) - 1;
        let step_g = window / max_code as f32;
        let step_w = step_g * self.scale;
        if !(step_w.is_finite() && step_w > 0.0) {
            return None;
        }
        let cols_padded = self.cols.next_multiple_of(intacc::LANES);
        let n_blocks = self.rows.div_ceil(ROW_BLOCK);
        if let Some(seed) = &self.int_seed {
            // Pristine tile: the program-time image is authoritative, so
            // the build is three buffer copies plus the drop factors.
            return Some(IntState {
                codes: seed.codes.clone(),
                block_colsums: seed.block_colsums.clone(),
                colsums: seed.colsums.clone(),
                drop: self.int_drop_factors(n_blocks, cols_padded),
                step_w,
                cols_padded,
            });
        }
        let inv_step_g = 1.0 / step_g;
        let gp = self.g_pos.as_slice();
        let gn = self.g_neg.as_slice();
        let mut codes = vec![0i16; self.rows * cols_padded];
        for r in 0..self.rows {
            for c in 0..self.cols {
                let d = gp[r * self.cols + c] - gn[r * self.cols + c];
                if !d.is_finite() {
                    return None;
                }
                let k = (d * inv_step_g).round() as i32;
                codes[r * cols_padded + c] = k.clamp(-max_code, max_code) as i16;
            }
        }
        let mut block_colsums = vec![0i32; n_blocks * cols_padded];
        let mut colsums = vec![0i32; cols_padded];
        for r in 0..self.rows {
            let block = &mut block_colsums[(r / ROW_BLOCK) * cols_padded..];
            for c in 0..cols_padded {
                let k = i32::from(codes[r * cols_padded + c]);
                block[c] += k;
                colsums[c] += k;
            }
        }
        let drop = self.int_drop_factors(n_blocks, cols_padded);
        Some(IntState { codes, block_colsums, colsums, drop, step_w, cols_padded })
    }

    /// Per-(row block, column) mean IR-drop factors for the integer path,
    /// or `None` when no resistive model is stored. One combined loading
    /// estimate over both planes: the int path attenuates the differential
    /// partial sum, not each plane, so it sees one factor per cell group.
    fn int_drop_factors(&self, n_blocks: usize, cols_padded: usize) -> Option<Vec<f32>> {
        self.ir_drop.filter(|m| m.r_wire() > 0.0).map(|model| {
            let gp = self.g_pos.as_slice();
            let gn = self.g_neg.as_slice();
            let g_avg = gp.iter().chain(gn).map(|v| v.abs()).sum::<f32>()
                / (gp.len() + gn.len()).max(1) as f32;
            let mut factors = vec![0.0f32; n_blocks * cols_padded];
            for blk in 0..n_blocks {
                let r0 = blk * ROW_BLOCK;
                let r1 = (r0 + ROW_BLOCK).min(self.rows);
                for c in 0..self.cols {
                    factors[blk * cols_padded + c] = model.mean_factor(r0, r1, c, g_avg);
                }
            }
            factors
        })
    }

    /// The tile's DAC level grid, when a DAC the integer path can use is
    /// configured.
    pub(crate) fn dac_grid(&self) -> Option<DacGrid> {
        if !(1..=16).contains(&self.config.dac_bits) {
            return None;
        }
        let levels = 1u32 << self.config.dac_bits;
        let (lo, hi) = (-self.input_range, self.input_range);
        let step = (hi - lo) / (levels - 1) as f32;
        Some(DacGrid { lo, hi, step, inv_step: 1.0 / step })
    }

    /// Records DAC saturation telemetry for one quantization pass over
    /// `values`, against this tile's input range. Lets a tiled caller that
    /// quantizes its whole input once record the conversion once too,
    /// instead of per (row block, column block). Callers pre-gate on
    /// [`tel::enabled`].
    pub(crate) fn record_dac(&self, values: &[f32]) {
        record_converter(values, self.input_range, &DAC_SAMPLES, &DAC_CLIPPED, &DAC_SATURATION);
    }

    /// Number of word lines in use.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines in use.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Calibrates the DAC full-scale range to the largest |input| the tile
    /// will see (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not positive.
    pub fn set_input_range(&mut self, range: f32) {
        assert!(range > 0.0, "input range must be positive, got {range}");
        self.input_range = range;
    }

    /// Reads the effective weight matrix back from the conductances —
    /// what the analog computation actually uses.
    pub fn effective_weights(&self) -> Tensor {
        self.diff().clone()
    }

    /// The tile's configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Worst-case weight-domain output magnitude the ADC is sized for:
    /// every word line driven at the calibrated input range into a cell at
    /// the full conductance window.
    pub fn adc_full_scale(&self) -> f32 {
        self.input_range * self.rows as f32 * (self.config.g_max - self.config.g_min) * self.scale
    }

    /// Stores a first-order IR-drop model on the tile, replacing any
    /// previous one (`r_wire == 0` clears it). The pristine conductances
    /// are left untouched: the `f32` path folds per-cell attenuation (see
    /// [`IrDropModel::attenuate`]) into the effective weight matrix on the
    /// next rebuild, and the integer path applies mean factors to its
    /// `i32` partial sums at row-block (`ROW_BLOCK`) granularity — so enabling IR
    /// drop no longer forces the `f32` slow path, and re-applying a model
    /// is idempotent instead of compounding.
    pub fn apply_ir_drop(&mut self, model: &IrDropModel) {
        self.ir_drop = (model.r_wire() > 0.0).then_some(*model);
        if tel::enabled() {
            IR_DROP_APPLIED.inc();
            // Worst-case wire loss: the smallest factor any live
            // (positive-path) conductance will see on rebuild.
            let gp = self.g_pos.as_slice();
            let g_avg =
                gp.iter().map(|v| v.abs()).sum::<f32>() / gp.len().max(1) as f32;
            let mut min_factor = f64::INFINITY;
            for r in 0..self.rows {
                for c in 0..self.cols {
                    if gp[r * self.cols + c] > 0.0 {
                        min_factor = min_factor.min(f64::from(model.factor(r, c, g_avg)));
                    }
                }
            }
            if min_factor.is_finite() {
                IR_DROP_MIN_FACTOR.set_min(min_factor);
            }
        }
        self.invalidate_cache();
    }

    /// Freezes one differential pair so it reads as the given
    /// weight-domain value: the magnitude (clamped to the representable
    /// range of the tile's programmed scale) lands on the positive or
    /// negative conductance path per the sign convention, and the opposite
    /// path is parked at `g_min`.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds or `weight` is non-finite.
    pub fn stick_cell(&mut self, row: usize, col: usize, weight: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) outside {}x{} tile",
            self.rows,
            self.cols
        );
        assert!(weight.is_finite(), "stuck weight must be finite, got {weight}");
        let window = self.config.g_max - self.config.g_min;
        let magnitude = (weight.abs() / self.scale).min(window);
        let (p, n) = if weight >= 0.0 {
            (self.config.g_min + magnitude, self.config.g_min)
        } else {
            (self.config.g_min, self.config.g_min + magnitude)
        };
        let idx = row * self.cols + col;
        self.g_pos.as_mut_slice()[idx] = p;
        self.g_neg.as_mut_slice()[idx] = n;
        CELLS_STUCK.inc();
        self.invalidate_cache();
        // A pinned cell is a *known, persistent* defect owned by the
        // checkup/repair path; re-baseline the scrubber around it so
        // online parity stays focused on transient flips.
        self.refresh_parity();
    }

    /// Analog matrix-vector product `wᵀ·x` realized on the tile:
    /// DAC-quantize the inputs, accumulate bit-line currents, ADC-quantize
    /// the outputs. Input is indexed by word line (`rows` long), output by
    /// bit line (`cols` long).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows()`.
    pub fn matvec(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 1, "matvec input must be 1-D");
        assert_eq!(
            input.len(),
            self.rows,
            "input length {} != word-line count {}",
            input.len(),
            self.rows
        );
        let batch = input
            .reshape(&[1, self.rows])
            .expect("1-D input reshapes to a single-row batch");
        self.matmul(&batch)
            .reshape(&[self.cols])
            .expect("single-row output reshapes to 1-D")
    }

    /// Batched analog inference: `N` input patterns (`[batch, rows]`)
    /// through the tile in one pass, returning `[batch, cols]`.
    ///
    /// The analog accumulate is a single GEMM against the cached
    /// differential conductance matrix instead of `batch` matvec sweeps;
    /// DAC and ADC quantization apply elementwise exactly as in
    /// [`Crossbar::matvec`], which is itself the `batch == 1` case of this
    /// method — so batched and per-row results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 2-D with `rows()` columns.
    pub fn matmul(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "batched input must be [batch, rows]");
        assert_eq!(
            input.shape()[1],
            self.rows,
            "input width {} != word-line count {}",
            input.shape()[1],
            self.rows
        );
        let batch = input.shape()[0];
        let exec = self.exec();
        // Integer fast path: DAC codes × cached conductance codes in i32,
        // ADC scaling fused at the tile boundary.
        if let Some(int) = &exec.int {
            let grid = self.dac_grid().expect("integer-capable config implies a live DAC");
            let t_dac = tel::enabled().then(std::time::Instant::now);
            let codes = grid.codes_for(input.as_slice());
            if let Some(codes) = codes {
                if let Some(t0) = t_dac {
                    PHASE_DAC_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                if tel::enabled() {
                    record_converter(
                        input.as_slice(),
                        self.input_range,
                        &DAC_SAMPLES,
                        &DAC_CLIPPED,
                        &DAC_SATURATION,
                    );
                }
                // The integer kernel fuses the ADC rescale into its tile
                // boundary, so its time lands in the accumulate phase.
                let t_acc = tel::enabled().then(std::time::Instant::now);
                let out = self.int_matmul(int, &grid, &codes, batch, self.rows, 0);
                if let Some(t0) = t_acc {
                    PHASE_ACCUMULATE_NS
                        .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                return out;
            }
        }
        // f32 reference path (exact/ideal configs, NaN inputs, or
        // integer-incapable precision settings).
        let mut out = if self.config.dac_bits > 0 {
            let mut v = input.clone();
            if tel::enabled() {
                record_converter(
                    v.as_slice(),
                    self.input_range,
                    &DAC_SAMPLES,
                    &DAC_CLIPPED,
                    &DAC_SATURATION,
                );
            }
            let t_dac = tel::enabled().then(std::time::Instant::now);
            let q = Quantizer::new(-self.input_range, self.input_range, self.config.dac_bits);
            q.quantize_slice(v.as_mut_slice());
            if let Some(t0) = t_dac {
                PHASE_DAC_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            let t_acc = tel::enabled().then(std::time::Instant::now);
            let out = v.matmul_prepacked(self.packed());
            if let Some(t0) = t_acc {
                PHASE_ACCUMULATE_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            out
        } else {
            // Analog accumulate directly in the weight domain: the cached
            // packing already carries the (g+ − g−)·scale fold, so one
            // GEMM yields I_bj·scale = Σ_i v_bi (g+_ij − g−_ij)·scale.
            let t_acc = tel::enabled().then(std::time::Instant::now);
            let out = input.matmul_prepacked(self.packed());
            if let Some(t0) = t_acc {
                PHASE_ACCUMULATE_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            out
        };
        let t_adc = tel::enabled().then(std::time::Instant::now);
        self.adc_quantize(&mut out);
        if let Some(t0) = t_adc {
            PHASE_ADC_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        out
    }

    /// ADC stage shared by both execution paths: records saturation stats
    /// and snaps outputs to the ADC grid when `adc_bits > 0`.
    fn adc_quantize(&self, out: &mut Tensor) {
        if self.config.adc_bits == 0 {
            return;
        }
        // ADC full scale sized to the worst-case current of the tile.
        let full_scale = self.adc_full_scale();
        if tel::enabled() {
            record_converter(
                out.as_slice(),
                full_scale,
                &ADC_SAMPLES,
                &ADC_CLIPPED,
                &ADC_SATURATION,
            );
        }
        let q = Quantizer::new(-full_scale, full_scale, self.config.adc_bits);
        q.quantize_slice(out.as_mut_slice());
    }

    /// Runs the integer path against pre-quantized DAC codes laid out as
    /// `batch` rows of `stride` codes, of which this tile consumes
    /// `[offset, offset + rows)` — so a tiled caller quantizes its whole
    /// input once and every row-block tile reads its slice in place.
    /// Returns `None` when this tile has no integer state (caller falls
    /// back to [`Crossbar::matmul`] on the raw segment).
    pub(crate) fn int_matmul_codes(
        &self,
        codes: &[i32],
        batch: usize,
        stride: usize,
        offset: usize,
    ) -> Option<Tensor> {
        let exec = self.exec();
        let int = exec.int.as_ref()?;
        let grid = self.dac_grid()?;
        Some(self.int_matmul(int, &grid, codes, batch, stride, offset))
    }

    /// Integer-domain batched product: exact i32 accumulation per row
    /// block, affine DAC/weight rescale at the tile boundary (f64
    /// intermediates), then the shared ADC stage. Each batch row is
    /// computed independently in a fixed block order, so results are
    /// bit-identical at any thread count and between the batched and
    /// matvec entry points.
    fn int_matmul(
        &self,
        int: &IntState,
        grid: &DacGrid,
        codes: &[i32],
        batch: usize,
        stride: usize,
        offset: usize,
    ) -> Tensor {
        let cols = self.cols;
        let rows = self.rows;
        let n_blocks = rows.div_ceil(ROW_BLOCK);
        INT_ROWBLOCKS.add((n_blocks * batch) as u64);
        let mut out = vec![0.0f32; batch * cols];
        let work = batch * rows * cols;
        let threads = if work < INT_PAR_THRESHOLD {
            1
        } else {
            pool::max_threads().min(batch).max(1)
        };
        if threads <= 1 {
            int_rows(int, grid, codes, 0, batch, stride, offset, rows, cols, &mut out);
        } else {
            let rows_per = batch.div_ceil(threads);
            pool::run_chunks(&mut out, rows_per * cols, |ci, chunk| {
                let b0 = ci * rows_per;
                let b1 = (b0 + rows_per).min(batch);
                int_rows(int, grid, codes, b0, b1, stride, offset, rows, cols, chunk);
            });
        }
        let mut out = Tensor::from_vec(out, &[batch, cols])
            .expect("integer-path output shape is consistent by construction");
        self.adc_quantize(&mut out);
        out
    }

    /// Freezes a fraction of cells (chosen uniformly over both
    /// differential paths) in the given fault state.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} outside [0, 1]");
        let target = match fault {
            CellFault::StuckLow => self.config.g_min,
            CellFault::StuckHigh => self.config.g_max,
        };
        let mut stuck = 0u64;
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            if rng.chance(fraction) {
                *g = target;
                stuck += 1;
            }
        }
        CELLS_STUCK.add(stuck);
        self.invalidate_cache();
    }

    /// Applies lognormal conductance disturbance to every cell,
    /// `g' = g · e^θ` with `θ ~ N(0, σ²)`, clamped to the conductance
    /// window — the in-field counterpart of programming variation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let (lo, hi) = (self.config.g_min, self.config.g_max);
        let mut factors = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_lognormal(&mut factors, 0.0, sigma);
        for (g, &f) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&factors)
        {
            *g = (*g * f).clamp(lo, hi);
        }
        DISTURB_EVENTS.inc();
        self.invalidate_cache();
    }

    /// Applies deterministic conductance drift toward the high-resistance
    /// state: `g' = g_min + (g − g_min)·e^(−ν·t)` per cell with
    /// `ν ~ |N(0, nu)|`.
    ///
    /// # Panics
    ///
    /// Panics if `nu` or `time` is negative.
    pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        assert!(nu >= 0.0 && time >= 0.0, "drift parameters must be non-negative");
        let lo = self.config.g_min;
        let mut rates = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_normal(&mut rates, 0.0, nu);
        for (g, &z) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&rates)
        {
            *g = lo + (*g - lo) * fastmath::exp(-z.abs() * time);
        }
        DRIFT_EVENTS.inc();
        self.invalidate_cache();
    }

    /// Flips each cell (both differential paths) independently with
    /// probability `probability` to a uniform draw over the conductance
    /// window — the sparse transient-upset counterpart of the dense
    /// [`Crossbar::disturb`] noise, and the device-level image of the
    /// digital `RandomSoftError` fault. Returns the number of flipped
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        assert!(
            (0.0..=1.0).contains(&probability),
            "flip probability {probability} outside [0, 1]"
        );
        let (lo, hi) = (self.config.g_min, self.config.g_max);
        let mut flipped = 0usize;
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            if rng.chance(probability) {
                *g = rng.uniform(lo, hi);
                flipped += 1;
            }
        }
        CELLS_FLIPPED.add(flipped as u64);
        self.invalidate_cache();
        flipped
    }

    /// Enables online soft-error tolerance: captures XOR checksums over
    /// both conductance planes (the spare checksum columns). Idempotent —
    /// re-enabling re-baselines to the current conductances.
    pub fn enable_parity(&mut self) {
        let pos = ParityCheck::capture(self.rows, self.cols, self.g_pos.as_slice());
        let neg = ParityCheck::capture(self.rows, self.cols, self.g_neg.as_slice());
        self.parity = Some(Box::new([pos, neg]));
    }

    /// Whether online parity is enabled on this tile.
    pub fn parity_enabled(&self) -> bool {
        self.parity.is_some()
    }

    /// Re-baselines the parity checksums to the current conductances —
    /// the scrubber acknowledging legitimate writes or slow expected
    /// aging the checkup path owns. No-op when parity is disabled.
    pub fn refresh_parity(&mut self) {
        if let Some(parity) = &mut self.parity {
            parity[0].refresh(self.g_pos.as_slice());
            parity[1].refresh(self.g_neg.as_slice());
        }
    }

    /// Scrubs both conductance planes against the parity checksums,
    /// restoring correctable transient flips to their exact original bit
    /// patterns (see [`ParityCheck::scrub`]). If any cell was corrected,
    /// the differential-conductance cache is invalidated exactly once.
    /// Returns the merged outcome (empty when parity is disabled).
    pub fn scrub_parity(&mut self) -> ScrubOutcome {
        let Some(parity) = &self.parity else { return ScrubOutcome::default() };
        let mut outcome = parity[0].scrub(self.g_pos.as_mut_slice());
        outcome.merge(parity[1].scrub(self.g_neg.as_mut_slice()));
        if outcome.corrected > 0 {
            self.invalidate_cache();
        }
        outcome
    }
}

/// Computes output rows `[b0, b1)` of the integer-domain product into
/// `out` (`(b1-b0) × cols`, caller-sliced). Row blocks accumulate in i32
/// via [`intacc::accumulate_rows`]; the DAC voltage affine
/// (`v = lo + idx·step`) and the weight-code scale `step_w` apply once per
/// block boundary in f64, against the cached column sums.
#[allow(clippy::too_many_arguments)]
fn int_rows(
    int: &IntState,
    grid: &DacGrid,
    codes: &[i32],
    b0: usize,
    b1: usize,
    stride: usize,
    offset: usize,
    rows: usize,
    cols: usize,
    out: &mut [f32],
) {
    let cp = int.cols_padded;
    let n_blocks = rows.div_ceil(ROW_BLOCK);
    let step_x = f64::from(grid.step);
    let lo = f64::from(grid.lo);
    let sw = f64::from(int.step_w);
    // Affine DAC→weight fold shared by the blocked and per-row paths.
    let fold = |acc: &[i32], dst: &mut [f32]| {
        for (j, d) in dst.iter_mut().enumerate() {
            *d = ((step_x * f64::from(acc[j]) + lo * f64::from(int.colsums[j])) * sw) as f32;
        }
    };
    let mut next = b0;
    if int.drop.is_none() {
        // Blocked main loop: four batch rows per sweep, so each widened
        // weight-code load feeds four multiply-adds. Integer addition is
        // exact, so this is bit-identical to the per-row remainder loop
        // below at any batch size or thread split.
        let mut acc4 = vec![0i32; 4 * cp];
        while next + 4 <= b1 {
            acc4.fill(0);
            let x = |k: usize| {
                &codes[(next + k) * stride + offset..(next + k) * stride + offset + rows]
            };
            for blk in 0..n_blocks {
                let r0 = blk * ROW_BLOCK;
                let r1 = (r0 + ROW_BLOCK).min(rows);
                intacc::accumulate_rows_x4(
                    [&x(0)[r0..r1], &x(1)[r0..r1], &x(2)[r0..r1], &x(3)[r0..r1]],
                    &int.codes[r0 * cp..r1 * cp],
                    cp,
                    &mut acc4,
                );
            }
            for k in 0..4 {
                let dst = &mut out[(next - b0 + k) * cols..(next - b0 + k + 1) * cols];
                fold(&acc4[k * cp..(k + 1) * cp], dst);
            }
            next += 4;
        }
    }
    let mut acc = vec![0i32; cp];
    for b in next..b1 {
        let x = &codes[b * stride + offset..b * stride + offset + rows];
        let dst = &mut out[(b - b0) * cols..(b - b0 + 1) * cols];
        match &int.drop {
            None => {
                // One exact i32 accumulate over all word lines, one
                // affine conversion per bit line.
                acc.fill(0);
                for blk in 0..n_blocks {
                    let r0 = blk * ROW_BLOCK;
                    let r1 = (r0 + ROW_BLOCK).min(rows);
                    intacc::accumulate_rows(&x[r0..r1], &int.codes[r0 * cp..r1 * cp], cp, &mut acc);
                }
                fold(&acc, dst);
            }
            Some(drop) => {
                // Per-block partial sums so each block's mean IR-drop
                // factor can scale its contribution before the f32 fold.
                for d in dst.iter_mut() {
                    *d = 0.0;
                }
                for blk in 0..n_blocks {
                    let r0 = blk * ROW_BLOCK;
                    let r1 = (r0 + ROW_BLOCK).min(rows);
                    acc.fill(0);
                    intacc::accumulate_rows(&x[r0..r1], &int.codes[r0 * cp..r1 * cp], cp, &mut acc);
                    let block_sums = &int.block_colsums[blk * cp..(blk + 1) * cp];
                    let factors = &drop[blk * cp..(blk + 1) * cp];
                    for (j, d) in dst.iter_mut().enumerate() {
                        let partial =
                            (step_x * f64::from(acc[j]) + lo * f64::from(block_sums[j])) * sw;
                        *d += (f64::from(factors[j]) * partial) as f32;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_config() -> CrossbarConfig {
        CrossbarConfig::ideal()
    }

    #[test]
    fn program_read_back_ideal() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[6, 4], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let back = xbar.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-4, "read-back mismatch {a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_ideal_dot_product() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[8, 5], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let y = xbar.matvec(&x);
        // Ideal: y_j = Σ_i w_ij x_i = (Wᵀ x)_j
        let ideal = w.transpose().matvec(&x);
        for (a, b) in y.as_slice().iter().zip(ideal.as_slice()) {
            assert!((a - b).abs() < 1e-3, "matvec mismatch {a} vs {b}");
        }
    }

    #[test]
    fn quantization_bounds_error() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { cell_bits: 4, dac_bits: 0, adc_bits: 0, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let back = xbar.effective_weights();
        let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = w_max / 15.0; // 4-bit magnitude levels
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-5, "quantization error too large: {a} vs {b}");
        }
    }

    #[test]
    fn coarser_cells_give_larger_error() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[16, 16], &mut rng);
        let err_for_bits = |bits: u32, rng: &mut SeededRng| {
            let config = CrossbarConfig { cell_bits: bits, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
            let xbar = Crossbar::program(&w, &config, rng);
            w.l1_distance(&xbar.effective_weights())
        };
        let coarse = err_for_bits(2, &mut rng);
        let fine = err_for_bits(6, &mut rng);
        assert!(coarse > fine * 2.0, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn write_noise_perturbs_weights() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { write_noise: 0.2, cell_bits: 16, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let dist = w.l1_distance(&xbar.effective_weights());
        assert!(dist > 0.1, "write noise had no effect: {dist}");
    }

    #[test]
    fn stuck_high_saturates_cells() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckHigh, 1.0, &mut rng);
        // All cells at g_max: differential pairs cancel, weights -> 0.
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn stuck_low_zeroes_positive_weights() {
        let mut rng = SeededRng::new(7);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckLow, 1.0, &mut rng);
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn drift_decays_toward_zero_weight() {
        let mut rng = SeededRng::new(8);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let before = xbar.effective_weights().norm_l1();
        xbar.drift(0.5, 2.0, &mut rng);
        let after = xbar.effective_weights().norm_l1();
        assert!(after < before, "drift should shrink weights: {before} -> {after}");
    }

    #[test]
    fn disturb_stays_in_window() {
        let mut rng = SeededRng::new(9);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
        xbar.disturb(0.5, &mut rng);
        for &g in xbar.g_pos.as_slice().iter().chain(xbar.g_neg.as_slice()) {
            assert!((0.0..=1.0).contains(&g), "conductance {g} escaped window");
        }
    }

    #[test]
    fn dac_quantization_changes_result() {
        let mut rng = SeededRng::new(10);
        let w = Tensor::randn(&[8, 4], &mut rng);
        let coarse_cfg = CrossbarConfig { dac_bits: 2, adc_bits: 0, cell_bits: 16, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar_c = Crossbar::program(&w, &coarse_cfg, &mut rng);
        let xbar_i = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| (v * 0.3).clamp(-1.0, 1.0));
        let diff = xbar_c.matvec(&x).l1_distance(&xbar_i.matvec(&x));
        assert!(diff > 1e-4, "2-bit DAC should visibly distort the product");
    }

    #[test]
    fn batched_matmul_bit_identical_to_matvec_rows() {
        let mut rng = SeededRng::new(20);
        for config in [CrossbarConfig::default(), ideal_config()] {
            let w = Tensor::randn(&[12, 7], &mut rng);
            let xbar = Crossbar::program(&w, &config, &mut rng);
            let batch = Tensor::randn(&[5, 12], &mut rng).map(|v| v.clamp(-1.0, 1.0));
            let out = xbar.matmul(&batch);
            assert_eq!(out.shape(), &[5, 7]);
            for b in 0..5 {
                let row = batch.row(b);
                let single = xbar.matvec(&row);
                for (j, (x, y)) in out.row(b).as_slice().iter().zip(single.as_slice()).enumerate()
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch row {b} col {j}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_injection_invalidates_conductance_cache() {
        let mut rng = SeededRng::new(21);
        let w = Tensor::full(&[4, 4], 0.5);
        let x = Tensor::full(&[1, 4], 1.0);
        for mutate in [
            (|x: &mut Crossbar, r: &mut SeededRng| {
                x.inject_stuck_cells(CellFault::StuckHigh, 1.0, r)
            }) as fn(&mut Crossbar, &mut SeededRng),
            |x, r| x.disturb(0.8, r),
            |x, r| x.drift(1.0, 5.0, r),
        ] {
            let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
            let before = xbar.matmul(&x); // populates the cache
            mutate(&mut xbar, &mut rng);
            let after = xbar.matmul(&x);
            assert!(
                before.l1_distance(&after) > 1e-3,
                "batched result unchanged after fault injection: cache went stale"
            );
            // The cached matrix must agree with a from-scratch read-back.
            let fresh = xbar.g_pos.zip_map(&xbar.g_neg, |p, n| p - n).scale(xbar.scale);
            assert_eq!(
                xbar.effective_weights().as_slice(),
                fresh.as_slice(),
                "cached differential matrix differs from recomputation"
            );
        }
    }

    #[test]
    fn exact_mode_round_trips_bitwise() {
        let mut rng = SeededRng::new(30);
        let w = Tensor::randn(&[16, 9], &mut rng);
        let xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let back = xbar.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            // −0.0 programs as +0.0 (magnitude mapping); numerically equal.
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "exact read-back drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_mode_matmul_bit_identical_to_digital() {
        let mut rng = SeededRng::new(31);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let x = Tensor::randn(&[4, 10], &mut rng);
        let analog = xbar.matmul(&x);
        let digital = x.matmul(&w);
        assert_eq!(analog, digital, "exact-mode crossbar product must be bitwise digital");
    }

    #[test]
    fn stick_cell_pins_one_weight() {
        let mut rng = SeededRng::new(32);
        let w = Tensor::randn(&[5, 5], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let x = Tensor::full(&[1, 5], 1.0);
        let before = xbar.matmul(&x); // populate cache
        xbar.stick_cell(2, 3, 0.0);
        xbar.stick_cell(1, 1, -0.25);
        let back = xbar.effective_weights();
        assert_eq!(back.as_slice()[2 * 5 + 3], 0.0);
        assert!((back.as_slice()[5 + 1] + 0.25).abs() < 1e-6);
        let after = xbar.matmul(&x);
        assert_ne!(
            before.as_slice(),
            after.as_slice(),
            "stick_cell left the conductance cache stale"
        );
    }

    #[test]
    fn ir_drop_attenuates_far_corner_and_invalidates_cache() {
        let mut rng = SeededRng::new(33);
        let w = Tensor::full(&[8, 8], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::full(&[1, 8], 1.0);
        let before = xbar.matmul(&x);
        xbar.apply_ir_drop(&IrDropModel::new(0.05));
        let after = xbar.matmul(&x);
        assert!(
            before.l1_distance(&after) > 1e-3,
            "IR drop had no effect or the cache went stale"
        );
        let back = xbar.effective_weights();
        // The far corner sees the most wire resistance.
        assert!(back.as_slice()[63] < back.as_slice()[0]);
    }

    #[test]
    fn parity_scrub_restores_flips_and_keeps_cache_coherent() {
        let mut rng = SeededRng::new(40);
        let w = Tensor::randn(&[12, 9], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        let x = Tensor::randn(&[3, 12], &mut rng);
        let clean = xbar.matmul(&x); // populates the conductance cache
        let golden = xbar.effective_weights();
        let mut flip_rng = SeededRng::new(44);
        let flipped = xbar.flip_cells(0.01, &mut flip_rng);
        assert!(flipped > 0, "seeded flip pass must hit at least one cell");
        // The flip must invalidate the cache (stale results would still
        // read the clean product here)...
        let corrupted = xbar.matmul(&x);
        assert_ne!(clean.as_slice(), corrupted.as_slice(), "cache went stale across flip_cells");
        // ...and the in-situ correction must invalidate it again: after
        // the scrub, both the product and the read-back are bitwise the
        // pre-flip values, which is only possible if the corrected
        // conductances were re-read.
        let outcome = xbar.scrub_parity();
        assert_eq!(outcome.corrected, flipped, "every seeded flip is isolated and correctable");
        assert_eq!(outcome.uncorrectable, 0);
        assert_eq!(xbar.matmul(&x), clean, "corrected product must be bitwise the clean one");
        assert_eq!(xbar.effective_weights(), golden);
    }

    #[test]
    fn exact_mode_with_parity_enabled_stays_bitwise_digital() {
        let mut rng = SeededRng::new(42);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        let x = Tensor::randn(&[4, 10], &mut rng);
        let digital = x.matmul(&w);
        assert_eq!(xbar.matmul(&x), digital, "parity columns must not perturb the datapath");
        // A scrub over a clean tile is a no-op and keeps bit-identity.
        assert_eq!(xbar.scrub_parity(), ScrubOutcome::default());
        assert_eq!(xbar.matmul(&x), digital);
    }

    #[test]
    fn stick_cell_rebaselines_parity() {
        let mut rng = SeededRng::new(43);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        xbar.stick_cell(2, 2, 0.0);
        // The pinned defect is owned by the checkup path: the scrubber
        // must not "repair" it back to the original weight.
        let pinned = xbar.effective_weights();
        assert_eq!(xbar.scrub_parity(), ScrubOutcome::default());
        assert_eq!(xbar.effective_weights(), pinned);
    }

    #[test]
    #[should_panic(expected = "exceed tile geometry")]
    fn rejects_oversized_matrix() {
        let mut rng = SeededRng::new(11);
        let w = Tensor::zeros(&[200, 4]);
        Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
    }
}
