//! Fault-aware retraining (the expensive, cloud-side repair).
//!
//! When remapping and redundancy cannot absorb the damage, the healthy
//! weights can be fine-tuned *around* the stuck cells: gradients update
//! every weight, but after each optimizer step the stuck positions are
//! clamped back to their frozen values, so the network learns to
//! compensate (cf. Liu et al., DAC'17, cited by the paper as a repair
//! mechanism).

use crate::defects::DefectMap;
use healthmon_nn::loss::SoftmaxCrossEntropy;
use healthmon_nn::optim::{Optimizer, Sgd};
use healthmon_nn::trainer::gather_batch;
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};

/// Configuration for fault-aware fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyRetrainConfig {
    /// Fine-tuning epochs (few are needed; the network is near a
    /// solution).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate (smaller than initial training).
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for FaultyRetrainConfig {
    fn default() -> Self {
        FaultyRetrainConfig { epochs: 2, batch_size: 32, learning_rate: 0.02, seed: 0 }
    }
}

/// Outcome of a fault-aware retraining run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainOutcome {
    /// Mean minibatch loss of the first epoch.
    pub initial_loss: f32,
    /// Mean minibatch loss of the final epoch.
    pub final_loss: f32,
}

/// Clamps the stuck positions of the parameter named `key` (if any
/// defects target it) back to their frozen values.
fn clamp_defects(net: &mut Network, defect_layers: &[(String, DefectMap)]) {
    net.for_each_param_mut(|key, tensor| {
        for (dkey, map) in defect_layers {
            if dkey == key {
                let cols = tensor.shape()[1];
                for cell in map.cells() {
                    tensor.as_mut_slice()[cell.row * cols + cell.col] = cell.value;
                }
            }
        }
    });
}

/// Fine-tunes `net` on `(images, labels)` while keeping the stuck cells
/// described by `defect_layers` (pairs of state-dict key and that
/// matrix's defect map) frozen at their fault values.
///
/// On entry the defects are applied to the network (a faulty device
/// cannot store anything else at those cells); on exit every healthy
/// weight has been fine-tuned to compensate.
///
/// # Panics
///
/// Panics if a defect key does not name a 2-D parameter of the network,
/// or shapes mismatch.
pub fn retrain_with_faults(
    net: &mut Network,
    defect_layers: &[(String, DefectMap)],
    images: &Tensor,
    labels: &[usize],
    config: FaultyRetrainConfig,
) -> RetrainOutcome {
    assert!(config.epochs > 0 && config.batch_size > 0, "retrain config must be non-trivial");
    clamp_defects(net, defect_layers);
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut rng = SeededRng::new(config.seed);
    let mut opt = Sgd::new(config.learning_rate).momentum(0.9);
    let mut first_epoch_loss = 0.0f32;
    let mut last_epoch_loss = 0.0f32;
    for epoch in 0..config.epochs {
        net.set_training(true);
        let order = rng.permutation(n);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let batch = gather_batch(images, chunk);
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            net.zero_grads();
            let logits = net.forward(&batch);
            let out = SoftmaxCrossEntropy::with_labels(&logits, &batch_labels);
            net.backward(&out.grad);
            opt.step(net);
            // The stuck cells cannot move: clamp them back.
            clamp_defects(net, defect_layers);
            loss_sum += out.loss as f64;
            batches += 1;
        }
        let mean = (loss_sum / batches.max(1) as f64) as f32;
        if epoch == 0 {
            first_epoch_loss = mean;
        }
        last_epoch_loss = mean;
    }
    net.set_training(false);
    RetrainOutcome { initial_loss: first_epoch_loss, final_loss: last_epoch_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::StuckCell;
    use healthmon_data::{DatasetSpec, SynthDigits};
    use healthmon_nn::models::tiny_mlp;
    use healthmon_nn::trainer::accuracy;
    use healthmon_nn::{TrainConfig, Trainer};

    fn trained_with_data() -> (Network, Tensor, Vec<usize>, Tensor, Vec<usize>) {
        let spec = DatasetSpec { train: 600, test: 200, seed: 4, noise: 0.1 };
        let raw = SynthDigits::new(spec).generate();
        let n_pixels = 28 * 28;
        let train_x = raw.train.images.reshape(&[raw.train.len(), n_pixels]).unwrap();
        let test_x = raw.test.images.reshape(&[raw.test.len(), n_pixels]).unwrap();
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(n_pixels, 32, 10, &mut rng);
        let config = TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() };
        Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
            &train_x,
            &raw.train.labels,
            None,
        );
        (net, train_x, raw.train.labels.clone(), test_x, raw.test.labels.clone())
    }

    #[test]
    fn retraining_recovers_accuracy() {
        let (net, train_x, train_y, test_x, test_y) = trained_with_data();
        let clean_acc = accuracy(&mut net.clone(), &test_x, &test_y, 64);

        // Damage the first layer heavily.
        let dict = net.state_dict();
        let (key, w0) = &dict[0];
        let mut rng = SeededRng::new(7);
        let defects = DefectMap::sample_for_matrix(w0, 0.10, &mut rng);
        let defect_layers = vec![(key.clone(), defects)];

        let mut damaged = net.clone();
        clamp_defects(&mut damaged, &defect_layers);
        let damaged_acc = accuracy(&mut damaged, &test_x, &test_y, 64);
        assert!(damaged_acc < clean_acc, "defects should cost accuracy");

        let mut repaired = net.clone();
        let outcome = retrain_with_faults(
            &mut repaired,
            &defect_layers,
            &train_x,
            &train_y,
            FaultyRetrainConfig::default(),
        );
        let repaired_acc = accuracy(&mut repaired, &test_x, &test_y, 64);
        assert!(
            repaired_acc > damaged_acc,
            "retraining must recover accuracy: {damaged_acc} -> {repaired_acc}"
        );
        assert!(outcome.final_loss <= outcome.initial_loss * 1.05);
    }

    #[test]
    fn stuck_cells_stay_stuck_after_retraining() {
        let (net, train_x, train_y, _, _) = trained_with_data();
        let dict = net.state_dict();
        let (key, _) = &dict[0];
        let defects = DefectMap::new(vec![
            StuckCell { row: 3, col: 5, value: 0.0 },
            StuckCell { row: 10, col: 2, value: 0.25 },
        ]);
        let defect_layers = vec![(key.clone(), defects)];
        let mut repaired = net.clone();
        retrain_with_faults(
            &mut repaired,
            &defect_layers,
            &train_x,
            &train_y,
            FaultyRetrainConfig { epochs: 1, ..Default::default() },
        );
        let mut seen = false;
        repaired.for_each_param(|k, t| {
            if k == key {
                let cols = t.shape()[1];
                assert_eq!(t.as_slice()[3 * cols + 5], 0.0);
                assert_eq!(t.as_slice()[10 * cols + 2], 0.25);
                seen = true;
            }
        });
        assert!(seen, "defective layer not found");
    }

    #[test]
    fn empty_defect_list_is_plain_fine_tuning() {
        let (net, train_x, train_y, test_x, test_y) = trained_with_data();
        let mut tuned = net.clone();
        retrain_with_faults(
            &mut tuned,
            &[],
            &train_x,
            &train_y,
            FaultyRetrainConfig { epochs: 1, ..Default::default() },
        );
        let acc = accuracy(&mut tuned, &test_x, &test_y, 64);
        assert!(acc > 0.8, "fine-tuning should not destroy the model: {acc}");
    }
}
