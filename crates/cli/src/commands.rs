//! Subcommand implementations.

use crate::args::ParsedArgs;
use healthmon::{
    run_mitigation, ActiveBackend, AetGenerator, AgingModel, BackendKind, BackendSpec,
    ChaosConfig, CrossbarConfig, CtpGenerator, Detector, FleetConfig, FleetSupervisor,
    FlightRecord, LifetimeConfig, LifetimeRuntime, MitigationScenario, MonitorPolicy,
    OtpGenerator, SdcCriterion, TestPatternSet, TrainData,
};
use healthmon_data::{DataSplit, Dataset, DatasetSpec, SynthDigits, SynthObjects};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::zoo::{self, DataFamily};
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{DropConnect, Network, TrainConfig, Trainer};
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::process::ExitCode;

/// Usage text printed on argument errors.
pub const USAGE: &str = "usage:
  healthmon models   lists every registered architecture (the model zoo)
                     with parameter counts and dataset families; all
                     subcommands accept any listed name as --arch
  healthmon train    --arch <lenet5|convnet7|mlp|resnet8|mlp4|attention> --out <model.json>
                     [--epochs N] [--seed N] [--train-size N] [--quiet true]
                     [--drop-connect P]    P in [0, 1): train with seeded
                     per-step weight dropping (fault-tolerance hardening)
  healthmon inject   --arch <A> --model <model.json> --fault <spec> --out <faulty.json>
                     [--seed N]            spec: pv:<sigma> | soft:<p> | stuck:<sa0>,<sa1> | drift:<nu>,<t>
  healthmon generate --arch <A> --model <model.json> --method <ctp|otp|aet> --out <patterns.json>
                     [--count N] [--seed N]
  healthmon check    --arch <A> --model <golden.json> --target <device.json> --patterns <patterns.json>
                     [--threshold F] [--backend <digital|analog|bitsliced>]
                     [--trace true] [--metrics <out.jsonl>]
                     exit 0 = healthy, 2 = faulty
  healthmon campaign --arch <A> --model <model.json> --fault <spec>
                     [--patterns <patterns.json>] [--count N] [--seed N]
                     [--threshold F] [--backend <digital|analog|bitsliced>]
                     [--trace true] [--metrics <out.jsonl>]
                     [--hardened true --hardened-model <hardened.json>]
                     hardened mode renders the mitigation cost/benefit
                     table (plain vs drop-connect model, plain vs
                     scrubbing lifetime); extra knobs: [--epochs N]
                     [--soft F] [--drift F] [--stuck-lambda F] [--watch F]
                     [--critical F] [--budget N] [--json <table.json>]
  healthmon deploy   --arch <A> --model <model.json>
                     [--seed N] [--probes N] [--backend <analog|bitsliced>]
                     [--trace true] [--metrics <out.jsonl>]
  healthmon accuracy --arch <A> --model <model.json> [--seed N]
  healthmon lifetime --arch <A> --model <model.json>
                     [--epochs N] [--seed N] [--count N] [--patterns <patterns.json>]
                     [--drift F] [--soft F] [--stuck-lambda F]
                     [--watch F] [--critical F] [--budget N] [--train-size N]
                     [--checkpoint <cp.json>] [--stop-after N] [--report <out.txt>]
                     [--backend <digital|analog|bitsliced>] (--checkpoint needs digital)
                     [--hardened true]     enable online soft-error
                     scrubbing (checksum-column parity over the device)
                     [--trace true] [--metrics <out.jsonl>]
                     exit 0 = lifetime completed, 2 = parked in critical
  healthmon fleet    --devices N [--arch <A>] [--epochs N] [--seed N] [--chaos <spec>]
                     [--shards N] [--checkpoint-dir <dir>] [--stop-after N]
                     [--report <out.txt>] [--budget N] [--retry N]
                     [--deadline MS] [--quarantine N] [--drift F] [--soft F]
                     [--bench true] [--trace true] [--metrics <out.jsonl>]
                     [--flight-dir <dir>]  dump a digest-guarded postmortem
                     artifact incident-<device>-<epoch>.json per incident,
                     quarantine or poisoned checkup (see `healthmon flight`)
                     [--serve-metrics <addr>]  serve live Prometheus text
                     on http://<addr>/metrics for the duration of the run
                     [--snapshot-log <log.jsonl>]  rotating multi-snapshot
                     stream, one frame per fleet epoch (see `healthmon top`)
                     supervises N independently-seeded device lifetimes
                     with panic isolation, retry/backoff, quarantine and
                     sharded crash-safe checkpoints; --arch swaps the
                     fleet's golden device for a zoo model (default: a
                     tiny seed-derived synthetic MLP); chaos spec:
                     panic:P,stall:P,stallms:N,trunc:P,flip:P,poison:P,seed:N
                     (or `off`); --bench adds a devices/sec line;
                     exit 0 = fleet completed, 2 = any device quarantined
  healthmon metrics  --file <metrics.jsonl> [--stable-only true] [--format <summary|jsonl|prometheus>]
                     [--last N] [--device I]
                     validates a telemetry dump or --snapshot-log stream;
                     --stable-only keeps only thread-count-invariant
                     series (for byte comparison), --last keeps the newest
                     N stream frames, --device keeps only events
                     mentioning device I
  healthmon top      --file <log.jsonl> [--watch true] [--refresh-ms N]
                     fleet health table from a --snapshot-log stream:
                     state histogram, incident tallies, per-phase checkup
                     latency quantiles; --watch refreshes in place
  healthmon flight   --file <incident.json>
                     digest-verifies and summarizes a flight-recorder
                     postmortem artifact written via --flight-dir

  Setting HEALTHMON_TRACE=1 enables telemetry recording for check,
  campaign, deploy and lifetime without any flags; the span/metric report
  goes to stderr, so stdout stays byte-identical to a telemetry-off run.";

/// Dispatches a parsed command line. Returns the process exit code.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let args = ParsedArgs::parse(argv)?;
    match args.command.as_str() {
        "train" => cmd_train(&args),
        "inject" => cmd_inject(&args),
        "generate" => cmd_generate(&args),
        "check" => cmd_check(&args),
        "campaign" => cmd_campaign(&args),
        "deploy" => cmd_deploy(&args),
        "accuracy" => cmd_accuracy(&args),
        "lifetime" => cmd_lifetime(&args),
        "fleet" => cmd_fleet(&args),
        "metrics" => cmd_metrics(&args),
        "top" => cmd_top(&args),
        "flight" => cmd_flight(&args),
        "models" => cmd_models(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Architectures the CLI can build, resolved through the model registry
/// ([`healthmon_nn::zoo`]); the dataset family is carried by each spec.
/// A typo returns an error enumerating every known model.
fn build_arch(arch: &str, rng: &mut SeededRng) -> Result<Network, String> {
    Ok(zoo::lookup(arch).map_err(|e| e.to_string())?.build(rng))
}

fn dataset_for(arch: &str, seed: u64, train_size: usize) -> Result<DataSplit, String> {
    let model = zoo::lookup(arch).map_err(|e| e.to_string())?;
    let spec = DatasetSpec { train: train_size, test: train_size / 4, seed, noise: 0.12 };
    let mut split = match model.family {
        DataFamily::Digits => SynthDigits::new(spec).generate(),
        DataFamily::Objects => SynthObjects::new(spec).generate(),
    };
    // Reshape samples to the model's native input layout when it differs
    // from the family's image layout (same element budget, e.g. [784] for
    // MLPs or [28, 28] token rows for the attention block).
    if split.train.sample_shape() != model.input_shape {
        let reshaped = |d: &Dataset| {
            let mut shape = vec![d.len()];
            shape.extend_from_slice(model.input_shape);
            Dataset::new(
                d.images.reshape(&shape).expect("family element budget matches input shape"),
                d.labels.clone(),
                d.num_classes,
            )
        };
        split = DataSplit { train: reshaped(&split.train), test: reshaped(&split.test) };
    }
    Ok(split)
}

fn load_model(arch: &str, path: &str, seed: u64) -> Result<Network, String> {
    let mut rng = SeededRng::new(seed);
    let mut net = build_arch(arch, &mut rng)?;
    net.load_weights(path)
        .map_err(|e| format!("loading `{path}`: {e}"))?;
    Ok(net)
}

fn load_patterns(path: &str) -> Result<TestPatternSet, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let images: Tensor =
        healthmon_serdes::from_str(&json).map_err(|e| format!("parsing `{path}`: {e}"))?;
    Ok(TestPatternSet::new("file", images))
}

/// Parses a fault spec like `pv:0.3`, `soft:0.01`, `stuck:0.02,0.01`,
/// `drift:0.1,2.0`.
fn parse_fault(spec: &str) -> Result<FaultModel, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec `{spec}` must look like kind:params"))?;
    let nums: Vec<f64> = rest
        .split(',')
        .map(|p| p.parse().map_err(|_| format!("bad number `{p}` in fault spec")))
        .collect::<Result<_, _>>()?;
    match (kind, nums.as_slice()) {
        ("pv", [sigma]) => Ok(FaultModel::ProgrammingVariation { sigma: *sigma as f32 }),
        ("soft", [p]) => Ok(FaultModel::RandomSoftError { probability: *p }),
        ("stuck", [sa0, sa1]) => Ok(FaultModel::StuckAt { sa0: *sa0, sa1: *sa1 }),
        ("drift", [nu, t]) => Ok(FaultModel::Drift { nu: *nu as f32, time: *t as f32 }),
        _ => Err(format!(
            "unknown fault `{spec}` (pv:<sigma> | soft:<p> | stuck:<sa0>,<sa1> | drift:<nu>,<t>)"
        )),
    }
}

/// Resolves the telemetry switches shared by the instrumented
/// subcommands: recording turns on when `--trace true` or `--metrics` is
/// given, and otherwise follows the `HEALTHMON_TRACE` environment
/// variable. Returns the `--metrics` output path, if any.
fn telemetry_setup(args: &ParsedArgs) -> Result<Option<String>, String> {
    let trace: bool = args.get_or("trace", false)?;
    let metrics = args.get("metrics").map(str::to_owned);
    if trace || metrics.is_some() {
        tel::set_enabled(true);
    } else {
        tel::init_from_env();
    }
    Ok(metrics)
}

/// Flushes telemetry at the end of an instrumented subcommand: writes
/// the JSON-lines dump to the `--metrics` path when given, and prints
/// the human-readable report to *stderr* — stdout stays byte-identical
/// to a telemetry-off run.
fn telemetry_finish(metrics: Option<&str>) -> Result<(), String> {
    if !tel::enabled() {
        return Ok(());
    }
    let snapshot = tel::snapshot();
    if let Some(path) = metrics {
        std::fs::write(path, tel::render_jsonl(&snapshot))
            .map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    eprint!("{}", tel::render_report(&snapshot));
    Ok(())
}

/// Resolves `--backend` into a full [`BackendSpec`] (default geometry;
/// bit-sliced backends get 8-bit weights over the default 4-bit cells).
fn parse_backend(args: &ParsedArgs) -> Result<BackendSpec, String> {
    let kind: BackendKind = match args.get("backend") {
        Some(name) => name.parse()?,
        None => BackendKind::Digital,
    };
    Ok(match kind {
        BackendKind::Digital => BackendSpec::digital(),
        BackendKind::Analog => BackendSpec::analog(CrossbarConfig::default()),
        BackendKind::BitSliced => BackendSpec::bitsliced(CrossbarConfig::default(), 8),
    })
}

fn cmd_train(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["arch", "out", "epochs", "seed", "train-size", "quiet", "drop-connect"])?;
    let arch = args.required("arch")?;
    let out = args.required("out")?;
    let epochs: usize = args.get_or("epochs", 4)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let train_size: usize = args.get_or("train-size", 2000)?;
    let quiet: bool = args.get_or("quiet", false)?;
    let drop_connect: f32 = args.get_or("drop-connect", 0.0)?;
    if !(0.0..1.0).contains(&drop_connect) {
        return Err(format!("--drop-connect {drop_connect} outside [0, 1)"));
    }

    let split = dataset_for(arch, seed, train_size)?;
    let mut rng = SeededRng::new(seed);
    let mut net = build_arch(arch, &mut rng)?;
    let hardening = if drop_connect > 0.0 {
        Some(DropConnect::new(drop_connect).seeded(seed))
    } else {
        None
    };
    let config = TrainConfig {
        epochs,
        batch_size: 32,
        verbose: !quiet,
        drop_connect: hardening,
        ..TrainConfig::default()
    };
    let report = Trainer::new(&mut net, Sgd::new(0.05).momentum(0.9), config).fit(
        &split.train.images,
        &split.train.labels,
        Some((&split.test.images, &split.test.labels)),
    );
    net.save_weights(out).map_err(|e| format!("writing `{out}`: {e}"))?;
    println!(
        "trained {arch}: test accuracy {:.2}%, saved to {out}",
        report.test_accuracy.expect("test set provided") * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_inject(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["arch", "model", "fault", "out", "seed"])?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let fault = parse_fault(args.required("fault")?)?;
    let out = args.required("out")?;
    let seed: u64 = args.get_or("seed", 2020)?;

    let net = load_model(arch, model, seed)?;
    let faulty = FaultCampaign::new(&net, seed).model(&fault, 0);
    faulty.save_weights(out).map_err(|e| format!("writing `{out}`: {e}"))?;
    println!("injected {} into {model}, saved to {out}", fault.describe());
    Ok(ExitCode::SUCCESS)
}

fn cmd_generate(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["arch", "model", "method", "out", "count", "seed"])?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let method = args.required("method")?;
    let out = args.required("out")?;
    let count: usize = args.get_or("count", 50)?;
    let seed: u64 = args.get_or("seed", 777)?;

    let mut net = load_model(arch, model, seed)?;
    let mut rng = SeededRng::new(seed);
    let pool = dataset_for(arch, seed ^ 0xC1D, count.max(50) * 20)?.test;
    let set = match method {
        "ctp" => CtpGenerator::new(count).select(&mut net, &pool),
        "aet" => AetGenerator::new(count, 0.15).generate(&mut net, &pool, &mut rng),
        "otp" => {
            let reference = FaultCampaign::new(&net, seed)
                .model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
            let classes = pool.num_classes;
            let per_class = count.div_ceil(classes).max(1);
            let (set, outcomes) = OtpGenerator::new()
                .per_class(per_class)
                .generate(&net, &reference, &mut rng);
            eprintln!(
                "O-TP: {}/{} patterns fully converged",
                outcomes.iter().filter(|o| o.converged).count(),
                outcomes.len()
            );
            set
        }
        other => return Err(format!("unknown method `{other}` (ctp|otp|aet)")),
    };
    let json = healthmon_serdes::to_string(set.images());
    std::fs::write(out, json).map_err(|e| format!("writing `{out}`: {e}"))?;
    println!("generated {} {} patterns, saved to {out}", set.len(), set.method());
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&[
        "arch", "model", "target", "patterns", "threshold", "seed", "backend", "trace", "metrics",
    ])?;
    let metrics = telemetry_setup(args)?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let target = args.required("target")?;
    let patterns = load_patterns(args.required("patterns")?)?;
    let threshold: f32 = args.get_or("threshold", 0.03)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let spec = parse_backend(args)?;

    let golden = load_model(arch, model, seed)?;
    let device = load_model(arch, target, seed)?;
    let detector = Detector::new(&golden, patterns);
    let mut backend_rng = SeededRng::new(seed).fork(1);
    let backend = spec.instantiate(&device, &mut backend_rng);
    if spec.kind != BackendKind::Digital {
        println!("backend: {}", spec.kind.label());
    }
    let distance = detector.confidence_distance(&backend);
    let faulty = detector.is_faulty(&backend, SdcCriterion::SdcA { threshold });
    println!(
        "confidence distance: all-class {:.4}, top-ranked {:.4} (threshold {threshold})",
        distance.all_classes, distance.top_ranked
    );
    let code = if faulty {
        println!("verdict: FAULTY");
        ExitCode::from(2)
    } else {
        println!("verdict: healthy");
        ExitCode::SUCCESS
    };
    telemetry_finish(metrics.as_deref())?;
    Ok(code)
}

/// Runs a statistical fault-injection campaign and prints the detection
/// rates, with responses evaluated on the chosen execution backend (the
/// digital path is byte-identical to `Detector::detection_rates`).
fn cmd_campaign(args: &ParsedArgs) -> Result<ExitCode, String> {
    if args.get_or("hardened", false)? {
        return cmd_campaign_mitigation(args);
    }
    args.expect_only(&[
        "arch", "model", "patterns", "fault", "count", "seed", "threshold", "backend", "trace",
        "metrics", "hardened",
    ])?;
    let metrics = telemetry_setup(args)?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let fault = parse_fault(args.required("fault")?)?;
    let count: usize = args.get_or("count", 32)?;
    let seed: u64 = args.get_or("seed", 2020)?;
    let threshold: f32 = args.get_or("threshold", 0.03)?;
    let spec = parse_backend(args)?;

    let mut golden = load_model(arch, model, seed)?;
    let patterns = match args.get("patterns") {
        Some(path) => load_patterns(path)?,
        None => {
            let pool = dataset_for(arch, seed ^ 0xC1D, 1000)?.test;
            CtpGenerator::new(10).select(&mut golden, &pool)
        }
    };
    let detector = Detector::new(&golden, patterns);
    let criteria = [
        SdcCriterion::SdcA { threshold },
        SdcCriterion::SdcT { threshold },
    ];
    let rates = detector.detection_rates_with(&golden, &fault, count, seed, &criteria, &spec);
    println!("backend: {}", spec.kind.label());
    println!("fault: {}", fault.describe());
    println!("campaign: {count} faulty models, {} patterns", detector.patterns().len());
    println!("detection rate SDC-A (threshold {threshold}): {:.4}", rates[0]);
    println!("detection rate SDC-T (threshold {threshold}): {:.4}", rates[1]);
    telemetry_finish(metrics.as_deref())?;
    Ok(ExitCode::SUCCESS)
}

/// `campaign --hardened true`: renders the mitigation cost/benefit
/// table — detection rate and accuracy of the plain vs the
/// drop-connect-hardened model under the fault class, then plain vs
/// scrubbing lifetimes under the identical aging stream (accuracy
/// retained, repairs avoided, pattern budget saved). `--json` writes
/// the same report as a deterministic JSON artifact.
fn cmd_campaign_mitigation(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&[
        "arch",
        "model",
        "hardened",
        "hardened-model",
        "patterns",
        "fault",
        "count",
        "seed",
        "threshold",
        "backend",
        "epochs",
        "soft",
        "drift",
        "stuck-lambda",
        "watch",
        "critical",
        "budget",
        "json",
        "trace",
        "metrics",
    ])?;
    let metrics = telemetry_setup(args)?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let hardened_model = args.required("hardened-model")?;
    let fault = parse_fault(args.required("fault")?)?;
    let count: usize = args.get_or("count", 8)?;
    let seed: u64 = args.get_or("seed", 2020)?;
    let threshold: f32 = args.get_or("threshold", 0.03)?;
    let epochs: usize = args.get_or("epochs", 6)?;
    let soft: f64 = args.get_or("soft", 8e-5)?;
    let drift: f32 = args.get_or("drift", 0.0)?;
    let stuck_lambda: f64 = args.get_or("stuck-lambda", 0.0)?;
    let watch: f32 = args.get_or("watch", 1e-6)?;
    let critical: f32 = args.get_or("critical", 1e-3)?;
    let budget: usize = args.get_or("budget", 3)?;
    let spec = parse_backend(args)?;

    let mut plain = load_model(arch, model, seed)?;
    let hardened = load_model(arch, hardened_model, seed)?;
    let patterns = match args.get("patterns") {
        Some(path) => load_patterns(path)?,
        None => {
            let pool = dataset_for(arch, seed ^ 0xC1D, 1000)?.test;
            CtpGenerator::new(10).select(&mut plain, &pool)
        }
    };
    let eval_split = dataset_for(arch, seed ^ 0xE7A, 640)?;
    let eval = TrainData { images: eval_split.test.images, labels: eval_split.test.labels };

    let scenario = MitigationScenario {
        seed,
        count,
        threshold,
        faults: vec![fault.clone()],
        backends: vec![spec],
        lifetime: LifetimeConfig {
            seed,
            epochs,
            aging: AgingModel {
                drift_nu: drift,
                drift_time: 1.0,
                soft_error_p: soft,
                stuck_lambda,
            },
            policy: MonitorPolicy {
                watch_threshold: watch,
                critical_threshold: critical,
                escalation_count: 1,
            },
            // The scrub path restores flipped cells bitwise only when
            // the digital deploy is exact; keep the demonstration free
            // of quantization-floor escalations.
            crossbar: CrossbarConfig::exact(),
            backend: spec,
            repair_budget: budget,
            ..LifetimeConfig::default()
        },
    };
    let report = run_mitigation(&plain, &hardened, &patterns, &eval, &scenario);
    println!("backend: {}", spec.kind.label());
    println!("fault: {}", fault.describe());
    println!(
        "mitigation analysis: {count} faulty models, {} patterns, {epochs} lifetime epochs",
        patterns.len()
    );
    print!("{}", report.render());
    if let Some(path) = args.get("json") {
        std::fs::write(path, healthmon_serdes::to_string(&report))
            .map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    telemetry_finish(metrics.as_deref())?;
    Ok(ExitCode::SUCCESS)
}

/// Programs the model onto an analog backend and prints the deployment
/// profile: per-layer tiles, area utilization, ADC range usage, mapping
/// error, and the digital-vs-analog logit divergence over a probe batch.
fn cmd_deploy(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["arch", "model", "seed", "probes", "backend", "trace", "metrics"])?;
    let metrics = telemetry_setup(args)?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let seed: u64 = args.get_or("seed", 2020)?;
    let probes: usize = args.get_or("probes", 16)?;
    if probes == 0 {
        return Err("--probes must be positive".to_owned());
    }
    let spec = match args.get("backend") {
        None => BackendSpec::analog(CrossbarConfig::default()),
        Some(_) => {
            let spec = parse_backend(args)?;
            if spec.kind == BackendKind::Digital {
                return Err(
                    "deploy profiles analog execution; pick --backend analog or bitsliced"
                        .to_owned(),
                );
            }
            spec
        }
    };

    let golden = load_model(arch, model, seed)?;
    let pool = dataset_for(arch, seed ^ 0xD3B, probes.max(50) * 4)?.test;
    let probe = TestPatternSet::new("probe", pool.images.clone())
        .truncated(probes.min(pool.len()))
        .images()
        .clone();
    let mut backend_rng = SeededRng::new(seed).fork(0);
    let report = match spec.instantiate(&golden, &mut backend_rng) {
        ActiveBackend::Analog(b) => b.deploy_report(&probe),
        ActiveBackend::BitSliced(b) => b.deploy_report(&probe),
        ActiveBackend::Digital(_) => unreachable!("digital rejected above"),
    };
    println!("backend: {}", spec.kind.label());
    for m in &report.mappings {
        println!(
            "  {}: {}x{}, {} tiles, utilization {:.1}%, adc range {:.1}%, error l1 {:.4}",
            m.key,
            m.shape.0,
            m.shape.1,
            m.tiles,
            m.utilization * 100.0,
            m.adc_range_used * 100.0,
            m.mapping_error_l1
        );
    }
    println!("total tiles: {}", report.total_tiles());
    println!("total mapping error l1: {:.4}", report.total_error_l1());
    match report.logit_divergence {
        Some(d) => println!("logit divergence vs digital ({probes} probes): {d:.6}"),
        None => println!("logit divergence vs digital: not profiled"),
    }
    telemetry_finish(metrics.as_deref())?;
    Ok(ExitCode::SUCCESS)
}

/// Simulates a deployed accelerator's lifetime: aging epochs interleaved
/// with concurrent checkups, autonomous diagnosis/repair on escalation,
/// and an incident report if the repair budget runs out.
///
/// With `--checkpoint`, the run resumes from the file when it exists and
/// rewrites it after every invocation, so an interrupted lifetime can be
/// continued bit-identically (`--stop-after` bounds the epochs per
/// invocation). The final report is printed on completion and also
/// written to `--report` when given.
fn cmd_lifetime(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&[
        "arch",
        "model",
        "epochs",
        "seed",
        "count",
        "patterns",
        "drift",
        "soft",
        "stuck-lambda",
        "watch",
        "critical",
        "budget",
        "train-size",
        "checkpoint",
        "stop-after",
        "report",
        "backend",
        "hardened",
        "trace",
        "metrics",
    ])?;
    let metrics = telemetry_setup(args)?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let epochs: usize = args.get_or("epochs", 12)?;
    let seed: u64 = args.get_or("seed", 2020)?;
    let count: usize = args.get_or("count", 10)?;
    let drift: f32 = args.get_or("drift", 0.05)?;
    let soft: f64 = args.get_or("soft", 0.0)?;
    let stuck_lambda: f64 = args.get_or("stuck-lambda", 1.0)?;
    let watch: f32 = args.get_or("watch", 0.02)?;
    let critical: f32 = args.get_or("critical", 0.06)?;
    let budget: usize = args.get_or("budget", 8)?;
    let train_size: usize = args.get_or("train-size", 0)?;
    let stop_after: usize = args.get_or("stop-after", 0)?;
    let hardened: bool = args.get_or("hardened", false)?;
    let backend = parse_backend(args)?;
    if backend.kind != BackendKind::Digital && args.get("checkpoint").is_some() {
        return Err(format!(
            "--checkpoint requires the digital backend: `{}` lifetimes keep live \
             conductance state that checkpoints cannot capture",
            backend.kind.label()
        ));
    }

    let mut golden = load_model(arch, model, seed)?;
    // The pattern set must be identical across resumes: either a fixed
    // file, or C-TP selection — a pure function of (model, arch, seed).
    let patterns = match args.get("patterns") {
        Some(path) => load_patterns(path)?,
        None => {
            let pool = dataset_for(arch, seed ^ 0xC1D, count.max(50) * 20)?.test;
            CtpGenerator::new(count).select(&mut golden, &pool)
        }
    };
    let train = if train_size > 0 {
        let split = dataset_for(arch, seed, train_size)?;
        Some(TrainData { images: split.train.images, labels: split.train.labels })
    } else {
        None
    };
    let config = LifetimeConfig {
        seed,
        epochs,
        aging: AgingModel {
            drift_nu: drift,
            drift_time: 1.0,
            soft_error_p: soft,
            stuck_lambda,
        },
        policy: MonitorPolicy {
            watch_threshold: watch,
            critical_threshold: critical,
            escalation_count: 1,
        },
        repair_budget: budget,
        backend,
        hardened,
        ..LifetimeConfig::default()
    };

    let checkpoint_path = args.get("checkpoint");
    let mut runtime = match checkpoint_path {
        Some(path) if std::path::Path::new(path).exists() => {
            // A truncated or bit-rotted file surfaces as
            // CheckpointCorrupt naming the path, not a bare parse error.
            let json = healthmon::store::read_checkpoint(path).map_err(|e| e.to_string())?;
            let runtime = LifetimeRuntime::resume(&golden, patterns, config, train, &json)
                .map_err(|e| format!("resuming: {}", healthmon::store::mark_corrupt(path, e)))?;
            eprintln!("resumed from {path} at epoch {}", runtime.epoch());
            runtime
        }
        _ => LifetimeRuntime::new(&golden, patterns, config, train),
    };

    runtime.run(if stop_after > 0 { Some(stop_after) } else { None });

    if let Some(path) = checkpoint_path {
        // Atomic replace: a kill mid-write leaves the previous complete
        // checkpoint instead of a torn file.
        healthmon::store::write_atomic(path, runtime.checkpoint_json().as_bytes())
            .map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    if !runtime.is_finished() {
        println!(
            "checkpointed at epoch {}/{} (state: {})",
            runtime.epoch(),
            runtime.config().epochs,
            runtime.state().label()
        );
        telemetry_finish(metrics.as_deref())?;
        return Ok(ExitCode::SUCCESS);
    }
    let report = runtime.render_report();
    print!("{report}");
    if let Some(path) = args.get("report") {
        std::fs::write(path, &report).map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    telemetry_finish(metrics.as_deref())?;
    if runtime.is_parked() {
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Supervises a fleet of independently-seeded device lifetimes: panic
/// isolation, retry/backoff, deadlines, quarantine, budget shedding and
/// sharded crash-safe checkpoints, with an optional seeded chaos layer
/// (see `ChaosConfig`) injecting faults into the monitor itself.
///
/// The fleet is self-contained: a small seeded model and pattern set are
/// derived from `--seed`, so determinism claims (`--chaos off` runs are
/// byte-identical at any `HEALTHMON_THREADS`) need no input files. With
/// `--checkpoint-dir`, the run resumes from existing shards (damaged
/// shards are reported and their devices restart fresh) and rewrites the
/// shards after every invocation; `--stop-after` bounds the fleet epochs
/// per invocation. `--bench true` appends a wall-clock devices/sec line
/// for the load-generator smoke.
/// Frames retained in a rotating `--snapshot-log` stream.
const SNAPSHOT_STREAM_FRAMES: usize = 16;

/// Appends one frame to the rotating snapshot stream and atomically
/// rewrites the log file with the retained tail, so a reader (or a crash)
/// never sees a torn stream.
fn write_snapshot_frame(
    fleet: &FleetSupervisor,
    log: &str,
    stream: &mut std::collections::VecDeque<String>,
) -> Result<(), String> {
    let (healthy, watch, critical) = fleet.state_histogram();
    let frame = tel::SnapshotFrame {
        seq: fleet.fleet_epoch() as u64,
        label: "fleet".to_owned(),
        epoch: fleet.fleet_epoch() as u64,
        // Sorted by name, per the SnapshotFrame contract.
        meta: vec![
            ("critical".to_owned(), critical as f64),
            ("damaged_shards".to_owned(), fleet.damaged_shards().len() as f64),
            ("device_epochs".to_owned(), fleet.total_device_epochs() as f64),
            ("devices".to_owned(), fleet.config().devices as f64),
            ("healthy".to_owned(), healthy as f64),
            ("incidents".to_owned(), fleet.incidents().len() as f64),
            ("quarantined".to_owned(), fleet.quarantined().len() as f64),
            ("watch".to_owned(), watch as f64),
        ],
        snap: tel::snapshot(),
    };
    stream.push_back(tel::render_frame(&frame));
    while stream.len() > SNAPSHOT_STREAM_FRAMES {
        stream.pop_front();
    }
    let text: String = stream.iter().flat_map(|s| s.chars()).collect();
    healthmon::store::write_atomic(std::path::Path::new(log), text.as_bytes())
        .map_err(|e| format!("writing snapshot log `{log}`: {e}"))
}

fn cmd_fleet(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&[
        "devices",
        "arch",
        "epochs",
        "seed",
        "chaos",
        "shards",
        "checkpoint-dir",
        "stop-after",
        "report",
        "budget",
        "retry",
        "deadline",
        "quarantine",
        "drift",
        "soft",
        "bench",
        "trace",
        "metrics",
        "flight-dir",
        "serve-metrics",
        "snapshot-log",
    ])?;
    let metrics = telemetry_setup(args)?;
    // Live observability paths need the registry recording even when
    // neither --trace nor --metrics asked for it.
    let snapshot_log = args.get("snapshot-log").map(str::to_owned);
    let serve = args.get("serve-metrics");
    if snapshot_log.is_some() || serve.is_some() {
        tel::set_enabled(true);
    }
    let _server = match serve {
        Some(addr) => {
            let server = tel::MetricsServer::start(addr)
                .map_err(|e| format!("binding metrics server on `{addr}`: {e}"))?;
            // Stderr, like the telemetry report: stdout stays
            // byte-identical to an unobserved run.
            eprintln!("serving Prometheus metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let devices: usize = args.required("devices")?.parse().map_err(|_| {
        "--devices must be a positive integer".to_owned()
    })?;
    let epochs: usize = args.get_or("epochs", 8)?;
    let seed: u64 = args.get_or("seed", 2020)?;
    let shards: usize = args.get_or("shards", 4)?;
    let stop_after: usize = args.get_or("stop-after", 0)?;
    let budget: usize = args.get_or("budget", 0)?;
    let retry: usize = args.get_or("retry", 3)?;
    let deadline: u64 = args.get_or("deadline", 200)?;
    let quarantine: usize = args.get_or("quarantine", 2)?;
    let drift: f32 = args.get_or("drift", 0.05)?;
    let soft: f64 = args.get_or("soft", 0.0)?;
    let bench: bool = args.get_or("bench", false)?;
    let chaos = ChaosConfig::parse(args.get("chaos").unwrap_or("off"))?;
    if chaos.is_active() {
        // Injected checkup panics are caught by the supervisor and become
        // incidents in the report; keep the default hook from spraying a
        // backtrace per attempt. Genuine panics still print.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|msg| msg.starts_with("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    }

    // Self-contained fleet: model and patterns are pure functions of the
    // seed, so no input artifacts are needed and every invocation with
    // the same flags sees the same golden device. `--arch` swaps in a zoo
    // model; the default stays the tiny synthetic MLP so existing runs
    // (and their golden outputs) are untouched.
    let mut rng = SeededRng::new(seed ^ 0xF1EE7);
    let (golden, patterns) = match args.get("arch") {
        Some(arch) => {
            let spec = zoo::lookup(arch).map_err(|e| e.to_string())?;
            let golden = spec.build(&mut rng);
            let mut probe_shape = vec![8usize];
            probe_shape.extend_from_slice(spec.input_shape);
            let patterns =
                TestPatternSet::new("fleet-synth", Tensor::randn(&probe_shape, &mut rng));
            (golden, patterns)
        }
        None => {
            let golden = tiny_mlp(16, 24, 6, &mut rng);
            let patterns = TestPatternSet::new("fleet-synth", Tensor::randn(&[8, 16], &mut rng));
            (golden, patterns)
        }
    };

    let config = FleetConfig {
        seed,
        devices,
        device: LifetimeConfig {
            epochs,
            aging: AgingModel {
                drift_nu: drift,
                drift_time: 1.0,
                soft_error_p: soft,
                ..AgingModel::default()
            },
            ..LifetimeConfig::default()
        },
        retry_limit: retry,
        deadline_ms: deadline,
        quarantine_threshold: quarantine,
        budget,
        shards,
        chaos,
        ..FleetConfig::default()
    };

    let dir = args.get("checkpoint-dir");
    let mut fleet = match dir {
        Some(dir) if std::path::Path::new(dir).join("shard-000.json").exists() => {
            let fleet = FleetSupervisor::resume(&golden, patterns, config, dir)
                .map_err(|e| format!("resuming fleet from `{dir}`: {e}"))?;
            eprintln!(
                "resumed fleet from {dir} at epoch {} ({} damaged shards)",
                fleet.fleet_epoch(),
                fleet.damaged_shards().len()
            );
            fleet
        }
        _ => FleetSupervisor::new(&golden, patterns, config).map_err(|e| e.to_string())?,
    };
    if let Some(flight_dir) = args.get("flight-dir") {
        std::fs::create_dir_all(flight_dir)
            .map_err(|e| format!("creating flight dir `{flight_dir}`: {e}"))?;
        fleet.set_flight_dir(flight_dir);
    }

    let t0 = std::time::Instant::now();
    let before_epochs = fleet.total_device_epochs();
    match &snapshot_log {
        None => fleet.run(if stop_after > 0 { Some(stop_after) } else { None }),
        Some(log) => {
            // Epoch-by-epoch so the rotating snapshot stream can record a
            // frame after every fleet epoch. `run(Some(1))` preserves the
            // supervisor's own termination rules (done / epoch bound):
            // when it makes no progress, the run is over.
            let mut stream: std::collections::VecDeque<String> = std::collections::VecDeque::new();
            let mut remaining = if stop_after > 0 { stop_after } else { usize::MAX };
            while remaining > 0 {
                let before = fleet.fleet_epoch();
                fleet.run(Some(1));
                if fleet.fleet_epoch() == before {
                    break;
                }
                remaining -= 1;
                write_snapshot_frame(&fleet, log, &mut stream)?;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    if let Some(dir) = dir {
        fleet.save_checkpoint(dir).map_err(|e| format!("checkpointing to `{dir}`: {e}"))?;
    }
    let report = fleet.render_report();
    print!("{report}");
    if let Some(path) = args.get("report") {
        std::fs::write(path, &report).map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    if bench {
        // Wall-clock line, deliberately outside the deterministic report.
        let done = fleet.total_device_epochs() - before_epochs;
        println!(
            "throughput: {:.1} device-epochs/sec ({done} device-epochs in {elapsed:.3}s)",
            done as f64 / elapsed.max(1e-9)
        );
    }
    telemetry_finish(metrics.as_deref())?;
    if fleet.quarantined().is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}

/// Validates a telemetry JSONL dump produced with `--metrics` or a
/// multi-snapshot stream produced with `--snapshot-log`: parses every
/// line, then prints a summary, the filtered JSONL, or a
/// Prometheus-style exposition (of the most recent frame). `--last N`
/// keeps only the newest N frames of a stream; `--device I` keeps only
/// events mentioning device I. `--stable-only true` keeps only the
/// series tagged thread-count-invariant (and drops spans/events, which
/// carry wall-clock timings) so two dumps from runs at different
/// `HEALTHMON_THREADS` settings can be byte-compared.
fn cmd_metrics(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["file", "stable-only", "format", "last", "device"])?;
    let path = args.required("file")?;
    let stable_only: bool = args.get_or("stable-only", false)?;
    let format = args.get("format").unwrap_or("summary");
    let last: usize = args.get_or("last", 0)?;
    let device: Option<usize> = match args.get("device") {
        Some(d) => {
            Some(d.parse().map_err(|_| "--device must be a device id".to_owned())?)
        }
        None => None,
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let mut frames = tel::parse_stream(&text).map_err(|e| format!("parsing `{path}`: {e}"))?;
    if frames.is_empty() {
        // An empty file validates as one empty snapshot, as it always did.
        frames.push(tel::SnapshotFrame {
            seq: 0,
            label: "snapshot".to_owned(),
            epoch: 0,
            meta: Vec::new(),
            snap: Default::default(),
        });
    }
    if last > 0 {
        let skip = frames.len().saturating_sub(last);
        frames.drain(..skip);
    }
    for frame in &mut frames {
        if let Some(id) = device {
            let tag = format!("device {id:04}");
            frame.snap.events.retain(|e| e.detail.contains(&tag));
        }
        if stable_only {
            frame.snap.counters.retain(|c| c.stable);
            frame.snap.gauges.retain(|g| g.stable);
            frame.snap.histograms.retain(|h| h.stable);
            frame.snap.spans.clear();
            frame.snap.events.clear();
        }
    }
    // A file without snapshot markers (a plain `--metrics` dump) keeps
    // the exact single-snapshot output shape.
    let plain = frames.len() == 1 && frames[0].label == "snapshot";
    match format {
        "summary" => {
            for frame in &frames {
                let s = &frame.snap;
                let counts = format!(
                    "{} counters, {} gauges, {} histograms, {} spans, {} events{}",
                    s.counters.len(),
                    s.gauges.len(),
                    s.histograms.len(),
                    s.spans.len(),
                    s.events.len(),
                    if stable_only { " (stable only)" } else { "" }
                );
                if plain {
                    println!("{path}: {counts}");
                } else {
                    let meta = frame
                        .meta
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    println!("{path}[{}] epoch {}: {counts} ({meta})", frame.seq, frame.epoch);
                }
            }
        }
        "jsonl" => {
            if plain {
                print!("{}", tel::render_jsonl(&frames[0].snap));
            } else {
                for frame in &frames {
                    print!("{}", tel::render_frame(frame));
                }
            }
        }
        "prometheus" => {
            let newest = frames.last().expect("frames is never empty here");
            print!("{}", tel::render_prometheus(&newest.snap));
        }
        other => return Err(format!("unknown format `{other}` (summary|jsonl|prometheus)")),
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders one refresh of the `healthmon top` fleet health table from
/// the frames of a snapshot stream.
fn render_top(path: &str, frames: &[tel::SnapshotFrame]) -> String {
    let mut out = String::new();
    let Some(newest) = frames.last() else {
        out.push_str(&format!("{path}: no snapshot frames yet\n"));
        return out;
    };
    let meta = |name: &str| newest.meta_value(name).unwrap_or(0.0);
    out.push_str(&format!(
        "== healthmon top == {path} (frame {}, fleet epoch {})\n",
        newest.seq, newest.epoch
    ));
    out.push_str(&format!(
        "devices {}: healthy {}  watch {}  critical {}  quarantined {}\n",
        meta("devices"),
        meta("healthy"),
        meta("watch"),
        meta("critical"),
        meta("quarantined"),
    ));
    out.push_str(&format!(
        "incidents {}  damaged shards {}  device-epochs {}\n",
        meta("incidents"),
        meta("damaged_shards"),
        meta("device_epochs"),
    ));
    let trend: Vec<String> =
        frames.iter().map(|f| format!("{}", f.meta_value("healthy").unwrap_or(0.0))).collect();
    out.push_str(&format!("healthy trend: {}\n", trend.join(" ")));
    let phases: Vec<_> =
        newest.snap.histograms.iter().filter(|h| h.name.starts_with("phase.")).collect();
    if !phases.is_empty() {
        out.push_str("phase latency ns (p50/p95/p99):\n");
        for h in phases {
            out.push_str(&format!(
                "  {:<22} {}/{}/{}  ({} samples)\n",
                h.name,
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
                h.count
            ));
        }
    }
    let fleet_counters: Vec<_> =
        newest.snap.counters.iter().filter(|c| c.name.starts_with("fleet.")).collect();
    if !fleet_counters.is_empty() {
        out.push_str("fleet counters:\n");
        for c in fleet_counters {
            out.push_str(&format!("  {:<22} {}\n", c.name, c.value));
        }
    }
    out
}

/// Live fleet health table over a `--snapshot-log` stream; `--watch
/// true` refreshes in place until interrupted.
fn cmd_top(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["file", "watch", "refresh-ms"])?;
    let path = args.required("file")?;
    let watch: bool = args.get_or("watch", false)?;
    let refresh_ms: u64 = args.get_or("refresh-ms", 1000)?;
    loop {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
        let frames = tel::parse_stream(&text).map_err(|e| format!("parsing `{path}`: {e}"))?;
        if watch {
            // Clear and home; the stream file is written atomically, so
            // every refresh sees a complete set of frames.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(path, &frames));
        if !watch {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms.max(50)));
    }
    Ok(ExitCode::SUCCESS)
}

/// Inspects a flight-recorder postmortem artifact: digest-verifies it
/// (a tampered or torn artifact is a loud error) and prints the
/// operator summary, tallies and trailing timeline.
fn cmd_flight(args: &ParsedArgs) -> Result<ExitCode, String> {
    use std::str::FromStr;
    args.expect_only(&["file"])?;
    let path = args.required("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let record =
        FlightRecord::from_str(&text).map_err(|e| format!("parsing `{path}`: {e}"))?;
    println!("{}", record.summary());
    println!("config digest: {}", record.config_digest);
    println!("phases: {}", record.phases.join(" -> "));
    println!("tallies:");
    for (name, value) in &record.tallies {
        println!("  {name:<20} {value}");
    }
    if let Some(tail) = record.timeline.last() {
        println!("last timeline point: {}", tail.render());
    }
    Ok(ExitCode::SUCCESS)
}

/// Lists the model zoo: one line per registered architecture with its
/// parameter count, input shape, dataset family, and description. The
/// parameter counts come from actually building each model, so the table
/// can never drift from the registry.
fn cmd_models(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&[])?;
    println!("{:<10} {:>9} {:<12} {:<7} description", "model", "params", "input", "data");
    for spec in zoo::ZOO {
        let mut rng = SeededRng::new(0);
        let net = spec.build(&mut rng);
        let shape = spec
            .input_shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        let family = match spec.family {
            DataFamily::Digits => "digits",
            DataFamily::Objects => "objects",
        };
        println!(
            "{:<10} {:>9} {:<12} {:<7} {}",
            spec.name,
            net.num_params(),
            shape,
            family,
            spec.description
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_accuracy(args: &ParsedArgs) -> Result<ExitCode, String> {
    args.expect_only(&["arch", "model", "seed"])?;
    let arch = args.required("arch")?;
    let model = args.required("model")?;
    let seed: u64 = args.get_or("seed", 7)?;
    let mut net = load_model(arch, model, seed)?;
    let split = dataset_for(arch, seed, 2000)?;
    let acc = accuracy(&mut net, &split.test.images, &split.test.labels, 64);
    println!("test accuracy: {:.2}%", acc * 100.0);
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            parse_fault("pv:0.3").unwrap(),
            FaultModel::ProgrammingVariation { sigma: 0.3 }
        );
        assert_eq!(
            parse_fault("soft:0.01").unwrap(),
            FaultModel::RandomSoftError { probability: 0.01 }
        );
        assert_eq!(
            parse_fault("stuck:0.02,0.01").unwrap(),
            FaultModel::StuckAt { sa0: 0.02, sa1: 0.01 }
        );
        assert_eq!(
            parse_fault("drift:0.1,2.5").unwrap(),
            FaultModel::Drift { nu: 0.1, time: 2.5 }
        );
        assert!(parse_fault("pv").is_err());
        assert!(parse_fault("pv:a").is_err());
        assert!(parse_fault("nope:1").is_err());
        assert!(parse_fault("stuck:0.1").is_err());
    }

    #[test]
    fn arch_construction() {
        let mut rng = SeededRng::new(0);
        assert!(build_arch("lenet5", &mut rng).is_ok());
        assert!(build_arch("mlp", &mut rng).is_ok());
        assert!(build_arch("resnet8", &mut rng).is_ok());
        assert!(build_arch("mlp4", &mut rng).is_ok());
        assert!(build_arch("attention", &mut rng).is_ok());
        // A typo's error message enumerates the whole registry.
        let err = build_arch("resnet", &mut rng).unwrap_err();
        for spec in zoo::ZOO {
            assert!(err.contains(spec.name), "error must list {}: {err}", spec.name);
        }
    }

    #[test]
    fn datasets_match_registry_input_shapes() {
        let split = dataset_for("mlp", 1, 40).unwrap();
        assert_eq!(split.train.sample_shape(), &[784]);
        let split = dataset_for("lenet5", 1, 40).unwrap();
        assert_eq!(split.train.sample_shape(), &[1, 28, 28]);
        let split = dataset_for("attention", 1, 40).unwrap();
        assert_eq!(split.train.sample_shape(), &[28, 28]);
        let split = dataset_for("resnet8", 1, 40).unwrap();
        assert_eq!(split.train.sample_shape(), &[3, 32, 32]);
        let split = dataset_for("mlp4", 1, 40).unwrap();
        assert_eq!(split.train.sample_shape(), &[784]);
    }

    #[test]
    fn models_subcommand_lists_the_zoo() {
        let argv = vec!["models".to_owned()];
        assert_eq!(run(&argv).unwrap(), ExitCode::SUCCESS);
    }

    #[test]
    fn unknown_subcommand_is_rejected() {
        let argv = vec!["frobnicate".to_owned()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn end_to_end_cli_workflow_mlp() {
        // train -> inject -> generate -> check, through temp files.
        let dir = std::env::temp_dir().join("healthmon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_owned).collect() };

        let model = p("model.json");
        let faulty = p("faulty.json");
        let patterns = p("patterns.json");

        run(&argv(&format!(
            "train --arch mlp --out {model} --epochs 2 --train-size 300 --quiet true"
        )))
        .unwrap();
        run(&argv(&format!(
            "inject --arch mlp --model {model} --fault pv:0.5 --out {faulty}"
        )))
        .unwrap();
        run(&argv(&format!(
            "generate --arch mlp --model {model} --method ctp --out {patterns} --count 10"
        )))
        .unwrap();
        // Golden device: healthy (exit 0).
        let healthy = run(&argv(&format!(
            "check --arch mlp --model {model} --target {model} --patterns {patterns}"
        )))
        .unwrap();
        assert_eq!(healthy, ExitCode::SUCCESS);
        // Heavily damaged device: faulty (exit 2).
        let verdict = run(&argv(&format!(
            "check --arch mlp --model {model} --target {faulty} --patterns {patterns}"
        )))
        .unwrap();
        assert_eq!(verdict, ExitCode::from(2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
