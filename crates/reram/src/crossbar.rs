//! A single crossbar tile: differential conductance pairs, DAC/ADC
//! conversion, and device-level fault injection.

use crate::{CrossbarConfig, IrDropModel, ParityCheck, Quantizer, ScrubOutcome};
use healthmon_tensor::{fastmath, SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::sync::OnceLock;

// Crossbar telemetry counts deterministic work items (programming, cache
// traffic, converter clipping over bit-identical GEMM outputs), so all
// metrics here are Stable: bit-identical at any HEALTHMON_THREADS.
static XBAR_PROGRAMS: tel::Counter =
    tel::Counter::new("reram.program.tiles", tel::Stability::Stable);
static XBAR_PROGRAM_CELLS: tel::Counter =
    tel::Counter::new("reram.program.cells", tel::Stability::Stable);
static CACHE_LOOKUPS: tel::Counter =
    tel::Counter::new("reram.cache.lookups", tel::Stability::Stable);
static CACHE_BUILDS: tel::Counter =
    tel::Counter::new("reram.cache.builds", tel::Stability::Stable);
static CACHE_INVALIDATIONS: tel::Counter =
    tel::Counter::new("reram.cache.invalidations", tel::Stability::Stable);
static DAC_SAMPLES: tel::Counter = tel::Counter::new("reram.dac.samples", tel::Stability::Stable);
static DAC_CLIPPED: tel::Counter = tel::Counter::new("reram.dac.clipped", tel::Stability::Stable);
static DAC_SATURATION: tel::Gauge =
    tel::Gauge::new("reram.dac.saturation_max", tel::Stability::Stable);
static ADC_SAMPLES: tel::Counter = tel::Counter::new("reram.adc.samples", tel::Stability::Stable);
static ADC_CLIPPED: tel::Counter = tel::Counter::new("reram.adc.clipped", tel::Stability::Stable);
static ADC_SATURATION: tel::Gauge =
    tel::Gauge::new("reram.adc.saturation_max", tel::Stability::Stable);
static IR_DROP_APPLIED: tel::Counter =
    tel::Counter::new("reram.ir_drop.applied", tel::Stability::Stable);
static IR_DROP_MIN_FACTOR: tel::Gauge =
    tel::Gauge::new("reram.ir_drop.attenuation_min", tel::Stability::Stable);
static CELLS_STUCK: tel::Counter = tel::Counter::new("reram.cells.stuck", tel::Stability::Stable);
static DISTURB_EVENTS: tel::Counter =
    tel::Counter::new("reram.disturb.events", tel::Stability::Stable);
static DRIFT_EVENTS: tel::Counter =
    tel::Counter::new("reram.drift.events", tel::Stability::Stable);
static CELLS_FLIPPED: tel::Counter =
    tel::Counter::new("reram.cells.flipped", tel::Stability::Stable);

/// Records converter saturation stats for one quantization pass: how many
/// samples fell outside `[-range, range]` (and were clamped by the
/// quantizer) plus the worst |value|/range ratio seen. Callers pre-gate on
/// [`tel::enabled`], so the scan never runs when telemetry is off.
fn record_converter(
    values: &[f32],
    range: f32,
    samples: &'static tel::Counter,
    clipped: &'static tel::Counter,
    saturation: &'static tel::Gauge,
) {
    let mut clip = 0u64;
    let mut worst = 0.0f32;
    for &v in values {
        let a = v.abs();
        if a > range {
            clip += 1;
        }
        if a > worst {
            worst = a;
        }
    }
    samples.add(values.len() as u64);
    clipped.add(clip);
    if range > 0.0 {
        saturation.set_max(f64::from(worst / range));
    }
}

/// Rounds a positive normal float up to the next power of two (identity
/// for exact powers of two). Used by the exact cell-storage mode: dividing
/// and re-multiplying by a power of two only shifts the exponent, so the
/// weight → conductance → weight round trip is bitwise lossless.
fn round_up_pow2(x: f32) -> f32 {
    let bits = x.to_bits();
    if bits & 0x007F_FFFF == 0 {
        return x;
    }
    let up = f32::from_bits((bits & 0x7F80_0000) + 0x0080_0000);
    if up.is_finite() {
        up
    } else {
        x
    }
}

/// A permanent device fault affecting one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Cell frozen in the high-resistance state (conductance = `g_min`),
    /// i.e. stuck-at-zero in weight terms.
    StuckLow,
    /// Cell frozen in the low-resistance state (conductance = `g_max`),
    /// i.e. stuck-at-one.
    StuckHigh,
}

/// One programmed crossbar tile storing a weight matrix `[rows, cols]` as
/// differential conductance pairs.
///
/// The tile keeps the scaling needed to map analog bit-line currents back
/// into weight-domain dot products, so [`Crossbar::matvec`] is directly
/// comparable to an ideal `wᵀx`.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    rows: usize,
    cols: usize,
    /// Positive-path conductances, `[rows, cols]`.
    g_pos: Tensor,
    /// Negative-path conductances, `[rows, cols]`.
    g_neg: Tensor,
    /// Weight-domain scale: `w = (g_pos − g_neg) * scale`.
    scale: f32,
    /// Largest |input| the DAC was calibrated for.
    input_range: f32,
    /// Lazily-computed effective weight matrix `(g_pos − g_neg) · scale`,
    /// shared by every inference through the tile. The scale is folded in
    /// so the analog accumulate is a single GEMM against weight-domain
    /// values (in exact cell mode that matrix is bitwise the programmed
    /// weights, making the crossbar product bit-identical to the digital
    /// one). Every conductance mutator replaces the cell with a fresh
    /// empty one, so a stale matrix can never be read after fault
    /// injection.
    diff_cache: OnceLock<Tensor>,
    /// Optional online soft-error tolerance: XOR checksum state over the
    /// two conductance planes (`[g_pos, g_neg]`), modelling the spare
    /// checksum columns programmed alongside the weights. `None` (the
    /// default) keeps the unhardened tile byte-identical to pre-parity
    /// behaviour at zero cost.
    parity: Option<Box<[ParityCheck; 2]>>,
}

impl Crossbar {
    /// Programs a weight matrix (`[rows, cols]`, at most the tile
    /// geometry) into a fresh tile, applying cell quantization and the
    /// configured lognormal write noise.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D, exceeds the tile geometry, or the
    /// config is invalid.
    pub fn program(weights: &Tensor, config: &CrossbarConfig, rng: &mut SeededRng) -> Self {
        config.validate();
        assert_eq!(weights.ndim(), 2, "crossbar stores a 2-D weight matrix");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        assert!(
            rows <= config.rows && cols <= config.cols,
            "weights {rows}x{cols} exceed tile geometry {}x{}",
            config.rows,
            config.cols
        );
        let raw_max = weights
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(f32::MIN_POSITIVE);
        // Exact cell mode: snapping the full scale to a power of two makes
        // |w|/w_max and the later ·scale re-expansion pure exponent
        // shifts, so programming is bitwise lossless.
        let w_max = if config.exact_cells() { round_up_pow2(raw_max) } else { raw_max };
        // w = (g+ − g−)·scale with g ∈ [g_min, g_max]; full-scale weight
        // uses the full conductance window.
        let window = config.g_max - config.g_min;
        let scale = w_max / window;
        let cell_q = (!config.exact_cells())
            .then(|| Quantizer::new(config.g_min, config.g_max, config.cell_bits));
        let mut g_pos = Tensor::zeros(&[rows, cols]);
        let mut g_neg = Tensor::zeros(&[rows, cols]);
        for ((gp, gn), &w) in g_pos
            .as_mut_slice()
            .iter_mut()
            .zip(g_neg.as_mut_slice())
            .zip(weights.as_slice())
        {
            let magnitude = (w.abs() / w_max) * window; // ∈ [0, window]
            let (p, n) = if w >= 0.0 {
                (config.g_min + magnitude, config.g_min)
            } else {
                (config.g_min, config.g_min + magnitude)
            };
            match &cell_q {
                Some(q) => {
                    *gp = q.quantize(p);
                    *gn = q.quantize(n);
                }
                None => {
                    *gp = p;
                    *gn = n;
                }
            }
        }
        if config.write_noise > 0.0 {
            // Bulk write-noise pass: one block-sampled lognormal draw per
            // cell instead of two scalar draws inside the programming loop.
            let mut noise = vec![0.0f32; g_pos.len() + g_neg.len()];
            rng.fill_lognormal(&mut noise, 0.0, config.write_noise);
            for (g, &f) in g_pos
                .as_mut_slice()
                .iter_mut()
                .chain(g_neg.as_mut_slice())
                .zip(&noise)
            {
                *g = (*g * f).clamp(config.g_min, config.g_max);
            }
        }
        XBAR_PROGRAMS.inc();
        XBAR_PROGRAM_CELLS.add((rows * cols) as u64);
        Crossbar {
            config: *config,
            rows,
            cols,
            g_pos,
            g_neg,
            scale,
            input_range: 1.0,
            diff_cache: OnceLock::new(),
            parity: None,
        }
    }

    /// The effective weight matrix `(g_pos − g_neg) · scale`, computed on
    /// first use and cached until the next conductance mutation.
    fn diff(&self) -> &Tensor {
        CACHE_LOOKUPS.inc();
        self.diff_cache.get_or_init(|| {
            CACHE_BUILDS.inc();
            let s = self.scale;
            self.g_pos.zip_map(&self.g_neg, move |p, n| (p - n) * s)
        })
    }

    /// Number of word lines in use.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines in use.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Calibrates the DAC full-scale range to the largest |input| the tile
    /// will see (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not positive.
    pub fn set_input_range(&mut self, range: f32) {
        assert!(range > 0.0, "input range must be positive, got {range}");
        self.input_range = range;
    }

    /// Reads the effective weight matrix back from the conductances —
    /// what the analog computation actually uses.
    pub fn effective_weights(&self) -> Tensor {
        self.diff().clone()
    }

    /// The tile's configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Worst-case weight-domain output magnitude the ADC is sized for:
    /// every word line driven at the calibrated input range into a cell at
    /// the full conductance window.
    pub fn adc_full_scale(&self) -> f32 {
        self.input_range * self.rows as f32 * (self.config.g_max - self.config.g_min) * self.scale
    }

    /// Attenuates both conductance planes with a first-order IR-drop
    /// model — the position-dependent wire-resistance loss applied to the
    /// stored conductances (see [`IrDropModel::attenuate`]).
    pub fn apply_ir_drop(&mut self, model: &IrDropModel) {
        let before = tel::enabled().then(|| self.g_pos.clone());
        self.g_pos = model.attenuate(&self.g_pos);
        self.g_neg = model.attenuate(&self.g_neg);
        if let Some(before) = before {
            IR_DROP_APPLIED.inc();
            // Worst-case wire loss: the smallest surviving fraction of any
            // (positive-path) conductance.
            let mut min_factor = f64::INFINITY;
            for (&b, &a) in before.as_slice().iter().zip(self.g_pos.as_slice()) {
                if b > 0.0 {
                    min_factor = min_factor.min(f64::from(a / b));
                }
            }
            if min_factor.is_finite() {
                IR_DROP_MIN_FACTOR.set_min(min_factor);
            }
        }
        self.diff_cache = OnceLock::new();
        CACHE_INVALIDATIONS.inc();
    }

    /// Freezes one differential pair so it reads as the given
    /// weight-domain value: the magnitude (clamped to the representable
    /// range of the tile's programmed scale) lands on the positive or
    /// negative conductance path per the sign convention, and the opposite
    /// path is parked at `g_min`.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds or `weight` is non-finite.
    pub fn stick_cell(&mut self, row: usize, col: usize, weight: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) outside {}x{} tile",
            self.rows,
            self.cols
        );
        assert!(weight.is_finite(), "stuck weight must be finite, got {weight}");
        let window = self.config.g_max - self.config.g_min;
        let magnitude = (weight.abs() / self.scale).min(window);
        let (p, n) = if weight >= 0.0 {
            (self.config.g_min + magnitude, self.config.g_min)
        } else {
            (self.config.g_min, self.config.g_min + magnitude)
        };
        let idx = row * self.cols + col;
        self.g_pos.as_mut_slice()[idx] = p;
        self.g_neg.as_mut_slice()[idx] = n;
        self.diff_cache = OnceLock::new();
        CELLS_STUCK.inc();
        CACHE_INVALIDATIONS.inc();
        // A pinned cell is a *known, persistent* defect owned by the
        // checkup/repair path; re-baseline the scrubber around it so
        // online parity stays focused on transient flips.
        self.refresh_parity();
    }

    /// Analog matrix-vector product `wᵀ·x` realized on the tile:
    /// DAC-quantize the inputs, accumulate bit-line currents, ADC-quantize
    /// the outputs. Input is indexed by word line (`rows` long), output by
    /// bit line (`cols` long).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows()`.
    pub fn matvec(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 1, "matvec input must be 1-D");
        assert_eq!(
            input.len(),
            self.rows,
            "input length {} != word-line count {}",
            input.len(),
            self.rows
        );
        let batch = input
            .reshape(&[1, self.rows])
            .expect("1-D input reshapes to a single-row batch");
        self.matmul(&batch)
            .reshape(&[self.cols])
            .expect("single-row output reshapes to 1-D")
    }

    /// Batched analog inference: `N` input patterns (`[batch, rows]`)
    /// through the tile in one pass, returning `[batch, cols]`.
    ///
    /// The analog accumulate is a single GEMM against the cached
    /// differential conductance matrix instead of `batch` matvec sweeps;
    /// DAC and ADC quantization apply elementwise exactly as in
    /// [`Crossbar::matvec`], which is itself the `batch == 1` case of this
    /// method — so batched and per-row results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 2-D with `rows()` columns.
    pub fn matmul(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "batched input must be [batch, rows]");
        assert_eq!(
            input.shape()[1],
            self.rows,
            "input width {} != word-line count {}",
            input.shape()[1],
            self.rows
        );
        // DAC: quantize voltages.
        let mut v = input.clone();
        if self.config.dac_bits > 0 {
            if tel::enabled() {
                record_converter(
                    v.as_slice(),
                    self.input_range,
                    &DAC_SAMPLES,
                    &DAC_CLIPPED,
                    &DAC_SATURATION,
                );
            }
            let q = Quantizer::new(-self.input_range, self.input_range, self.config.dac_bits);
            q.quantize_slice(v.as_mut_slice());
        }
        // Analog accumulate directly in the weight domain: the cached
        // matrix already carries the (g+ − g−)·scale fold, so one GEMM
        // yields I_bj·scale = Σ_i v_bi (g+_ij − g−_ij)·scale.
        let mut out = v.matmul(self.diff());
        if self.config.adc_bits > 0 {
            // ADC full scale sized to the worst-case current of the tile.
            let full_scale = self.adc_full_scale();
            if tel::enabled() {
                record_converter(
                    out.as_slice(),
                    full_scale,
                    &ADC_SAMPLES,
                    &ADC_CLIPPED,
                    &ADC_SATURATION,
                );
            }
            let q = Quantizer::new(-full_scale, full_scale, self.config.adc_bits);
            q.quantize_slice(out.as_mut_slice());
        }
        out
    }

    /// Freezes a fraction of cells (chosen uniformly over both
    /// differential paths) in the given fault state.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} outside [0, 1]");
        let target = match fault {
            CellFault::StuckLow => self.config.g_min,
            CellFault::StuckHigh => self.config.g_max,
        };
        let mut stuck = 0u64;
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            if rng.chance(fraction) {
                *g = target;
                stuck += 1;
            }
        }
        CELLS_STUCK.add(stuck);
        self.diff_cache = OnceLock::new();
        CACHE_INVALIDATIONS.inc();
    }

    /// Applies lognormal conductance disturbance to every cell,
    /// `g' = g · e^θ` with `θ ~ N(0, σ²)`, clamped to the conductance
    /// window — the in-field counterpart of programming variation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let (lo, hi) = (self.config.g_min, self.config.g_max);
        let mut factors = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_lognormal(&mut factors, 0.0, sigma);
        for (g, &f) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&factors)
        {
            *g = (*g * f).clamp(lo, hi);
        }
        DISTURB_EVENTS.inc();
        self.diff_cache = OnceLock::new();
        CACHE_INVALIDATIONS.inc();
    }

    /// Applies deterministic conductance drift toward the high-resistance
    /// state: `g' = g_min + (g − g_min)·e^(−ν·t)` per cell with
    /// `ν ~ |N(0, nu)|`.
    ///
    /// # Panics
    ///
    /// Panics if `nu` or `time` is negative.
    pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        assert!(nu >= 0.0 && time >= 0.0, "drift parameters must be non-negative");
        let lo = self.config.g_min;
        let mut rates = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_normal(&mut rates, 0.0, nu);
        for (g, &z) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&rates)
        {
            *g = lo + (*g - lo) * fastmath::exp(-z.abs() * time);
        }
        DRIFT_EVENTS.inc();
        self.diff_cache = OnceLock::new();
        CACHE_INVALIDATIONS.inc();
    }

    /// Flips each cell (both differential paths) independently with
    /// probability `probability` to a uniform draw over the conductance
    /// window — the sparse transient-upset counterpart of the dense
    /// [`Crossbar::disturb`] noise, and the device-level image of the
    /// digital `RandomSoftError` fault. Returns the number of flipped
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        assert!(
            (0.0..=1.0).contains(&probability),
            "flip probability {probability} outside [0, 1]"
        );
        let (lo, hi) = (self.config.g_min, self.config.g_max);
        let mut flipped = 0usize;
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            if rng.chance(probability) {
                *g = rng.uniform(lo, hi);
                flipped += 1;
            }
        }
        CELLS_FLIPPED.add(flipped as u64);
        self.diff_cache = OnceLock::new();
        CACHE_INVALIDATIONS.inc();
        flipped
    }

    /// Enables online soft-error tolerance: captures XOR checksums over
    /// both conductance planes (the spare checksum columns). Idempotent —
    /// re-enabling re-baselines to the current conductances.
    pub fn enable_parity(&mut self) {
        let pos = ParityCheck::capture(self.rows, self.cols, self.g_pos.as_slice());
        let neg = ParityCheck::capture(self.rows, self.cols, self.g_neg.as_slice());
        self.parity = Some(Box::new([pos, neg]));
    }

    /// Whether online parity is enabled on this tile.
    pub fn parity_enabled(&self) -> bool {
        self.parity.is_some()
    }

    /// Re-baselines the parity checksums to the current conductances —
    /// the scrubber acknowledging legitimate writes or slow expected
    /// aging the checkup path owns. No-op when parity is disabled.
    pub fn refresh_parity(&mut self) {
        if let Some(parity) = &mut self.parity {
            parity[0].refresh(self.g_pos.as_slice());
            parity[1].refresh(self.g_neg.as_slice());
        }
    }

    /// Scrubs both conductance planes against the parity checksums,
    /// restoring correctable transient flips to their exact original bit
    /// patterns (see [`ParityCheck::scrub`]). If any cell was corrected,
    /// the differential-conductance cache is invalidated exactly once.
    /// Returns the merged outcome (empty when parity is disabled).
    pub fn scrub_parity(&mut self) -> ScrubOutcome {
        let Some(parity) = &self.parity else { return ScrubOutcome::default() };
        let mut outcome = parity[0].scrub(self.g_pos.as_mut_slice());
        outcome.merge(parity[1].scrub(self.g_neg.as_mut_slice()));
        if outcome.corrected > 0 {
            self.diff_cache = OnceLock::new();
            CACHE_INVALIDATIONS.inc();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_config() -> CrossbarConfig {
        CrossbarConfig::ideal()
    }

    #[test]
    fn program_read_back_ideal() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[6, 4], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let back = xbar.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-4, "read-back mismatch {a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_ideal_dot_product() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[8, 5], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let y = xbar.matvec(&x);
        // Ideal: y_j = Σ_i w_ij x_i = (Wᵀ x)_j
        let ideal = w.transpose().matvec(&x);
        for (a, b) in y.as_slice().iter().zip(ideal.as_slice()) {
            assert!((a - b).abs() < 1e-3, "matvec mismatch {a} vs {b}");
        }
    }

    #[test]
    fn quantization_bounds_error() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { cell_bits: 4, dac_bits: 0, adc_bits: 0, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let back = xbar.effective_weights();
        let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = w_max / 15.0; // 4-bit magnitude levels
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-5, "quantization error too large: {a} vs {b}");
        }
    }

    #[test]
    fn coarser_cells_give_larger_error() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[16, 16], &mut rng);
        let err_for_bits = |bits: u32, rng: &mut SeededRng| {
            let config = CrossbarConfig { cell_bits: bits, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
            let xbar = Crossbar::program(&w, &config, rng);
            w.l1_distance(&xbar.effective_weights())
        };
        let coarse = err_for_bits(2, &mut rng);
        let fine = err_for_bits(6, &mut rng);
        assert!(coarse > fine * 2.0, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn write_noise_perturbs_weights() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { write_noise: 0.2, cell_bits: 16, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let dist = w.l1_distance(&xbar.effective_weights());
        assert!(dist > 0.1, "write noise had no effect: {dist}");
    }

    #[test]
    fn stuck_high_saturates_cells() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckHigh, 1.0, &mut rng);
        // All cells at g_max: differential pairs cancel, weights -> 0.
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn stuck_low_zeroes_positive_weights() {
        let mut rng = SeededRng::new(7);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckLow, 1.0, &mut rng);
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn drift_decays_toward_zero_weight() {
        let mut rng = SeededRng::new(8);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let before = xbar.effective_weights().norm_l1();
        xbar.drift(0.5, 2.0, &mut rng);
        let after = xbar.effective_weights().norm_l1();
        assert!(after < before, "drift should shrink weights: {before} -> {after}");
    }

    #[test]
    fn disturb_stays_in_window() {
        let mut rng = SeededRng::new(9);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
        xbar.disturb(0.5, &mut rng);
        for &g in xbar.g_pos.as_slice().iter().chain(xbar.g_neg.as_slice()) {
            assert!((0.0..=1.0).contains(&g), "conductance {g} escaped window");
        }
    }

    #[test]
    fn dac_quantization_changes_result() {
        let mut rng = SeededRng::new(10);
        let w = Tensor::randn(&[8, 4], &mut rng);
        let coarse_cfg = CrossbarConfig { dac_bits: 2, adc_bits: 0, cell_bits: 16, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar_c = Crossbar::program(&w, &coarse_cfg, &mut rng);
        let xbar_i = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| (v * 0.3).clamp(-1.0, 1.0));
        let diff = xbar_c.matvec(&x).l1_distance(&xbar_i.matvec(&x));
        assert!(diff > 1e-4, "2-bit DAC should visibly distort the product");
    }

    #[test]
    fn batched_matmul_bit_identical_to_matvec_rows() {
        let mut rng = SeededRng::new(20);
        for config in [CrossbarConfig::default(), ideal_config()] {
            let w = Tensor::randn(&[12, 7], &mut rng);
            let xbar = Crossbar::program(&w, &config, &mut rng);
            let batch = Tensor::randn(&[5, 12], &mut rng).map(|v| v.clamp(-1.0, 1.0));
            let out = xbar.matmul(&batch);
            assert_eq!(out.shape(), &[5, 7]);
            for b in 0..5 {
                let row = batch.row(b);
                let single = xbar.matvec(&row);
                for (j, (x, y)) in out.row(b).as_slice().iter().zip(single.as_slice()).enumerate()
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch row {b} col {j}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_injection_invalidates_conductance_cache() {
        let mut rng = SeededRng::new(21);
        let w = Tensor::full(&[4, 4], 0.5);
        let x = Tensor::full(&[1, 4], 1.0);
        for mutate in [
            (|x: &mut Crossbar, r: &mut SeededRng| {
                x.inject_stuck_cells(CellFault::StuckHigh, 1.0, r)
            }) as fn(&mut Crossbar, &mut SeededRng),
            |x, r| x.disturb(0.8, r),
            |x, r| x.drift(1.0, 5.0, r),
        ] {
            let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
            let before = xbar.matmul(&x); // populates the cache
            mutate(&mut xbar, &mut rng);
            let after = xbar.matmul(&x);
            assert!(
                before.l1_distance(&after) > 1e-3,
                "batched result unchanged after fault injection: cache went stale"
            );
            // The cached matrix must agree with a from-scratch read-back.
            let fresh = xbar.g_pos.zip_map(&xbar.g_neg, |p, n| p - n).scale(xbar.scale);
            assert_eq!(
                xbar.effective_weights().as_slice(),
                fresh.as_slice(),
                "cached differential matrix differs from recomputation"
            );
        }
    }

    #[test]
    fn exact_mode_round_trips_bitwise() {
        let mut rng = SeededRng::new(30);
        let w = Tensor::randn(&[16, 9], &mut rng);
        let xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let back = xbar.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            // −0.0 programs as +0.0 (magnitude mapping); numerically equal.
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "exact read-back drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_mode_matmul_bit_identical_to_digital() {
        let mut rng = SeededRng::new(31);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let x = Tensor::randn(&[4, 10], &mut rng);
        let analog = xbar.matmul(&x);
        let digital = x.matmul(&w);
        assert_eq!(analog, digital, "exact-mode crossbar product must be bitwise digital");
    }

    #[test]
    fn stick_cell_pins_one_weight() {
        let mut rng = SeededRng::new(32);
        let w = Tensor::randn(&[5, 5], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        let x = Tensor::full(&[1, 5], 1.0);
        let before = xbar.matmul(&x); // populate cache
        xbar.stick_cell(2, 3, 0.0);
        xbar.stick_cell(1, 1, -0.25);
        let back = xbar.effective_weights();
        assert_eq!(back.as_slice()[2 * 5 + 3], 0.0);
        assert!((back.as_slice()[5 + 1] + 0.25).abs() < 1e-6);
        let after = xbar.matmul(&x);
        assert_ne!(
            before.as_slice(),
            after.as_slice(),
            "stick_cell left the conductance cache stale"
        );
    }

    #[test]
    fn ir_drop_attenuates_far_corner_and_invalidates_cache() {
        let mut rng = SeededRng::new(33);
        let w = Tensor::full(&[8, 8], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::full(&[1, 8], 1.0);
        let before = xbar.matmul(&x);
        xbar.apply_ir_drop(&IrDropModel::new(0.05));
        let after = xbar.matmul(&x);
        assert!(
            before.l1_distance(&after) > 1e-3,
            "IR drop had no effect or the cache went stale"
        );
        let back = xbar.effective_weights();
        // The far corner sees the most wire resistance.
        assert!(back.as_slice()[63] < back.as_slice()[0]);
    }

    #[test]
    fn parity_scrub_restores_flips_and_keeps_cache_coherent() {
        let mut rng = SeededRng::new(40);
        let w = Tensor::randn(&[12, 9], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        let x = Tensor::randn(&[3, 12], &mut rng);
        let clean = xbar.matmul(&x); // populates the conductance cache
        let golden = xbar.effective_weights();
        let mut flip_rng = SeededRng::new(44);
        let flipped = xbar.flip_cells(0.01, &mut flip_rng);
        assert!(flipped > 0, "seeded flip pass must hit at least one cell");
        // The flip must invalidate the cache (stale results would still
        // read the clean product here)...
        let corrupted = xbar.matmul(&x);
        assert_ne!(clean.as_slice(), corrupted.as_slice(), "cache went stale across flip_cells");
        // ...and the in-situ correction must invalidate it again: after
        // the scrub, both the product and the read-back are bitwise the
        // pre-flip values, which is only possible if the corrected
        // conductances were re-read.
        let outcome = xbar.scrub_parity();
        assert_eq!(outcome.corrected, flipped, "every seeded flip is isolated and correctable");
        assert_eq!(outcome.uncorrectable, 0);
        assert_eq!(xbar.matmul(&x), clean, "corrected product must be bitwise the clean one");
        assert_eq!(xbar.effective_weights(), golden);
    }

    #[test]
    fn exact_mode_with_parity_enabled_stays_bitwise_digital() {
        let mut rng = SeededRng::new(42);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        let x = Tensor::randn(&[4, 10], &mut rng);
        let digital = x.matmul(&w);
        assert_eq!(xbar.matmul(&x), digital, "parity columns must not perturb the datapath");
        // A scrub over a clean tile is a no-op and keeps bit-identity.
        assert_eq!(xbar.scrub_parity(), ScrubOutcome::default());
        assert_eq!(xbar.matmul(&x), digital);
    }

    #[test]
    fn stick_cell_rebaselines_parity() {
        let mut rng = SeededRng::new(43);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::exact(), &mut rng);
        xbar.enable_parity();
        xbar.stick_cell(2, 2, 0.0);
        // The pinned defect is owned by the checkup path: the scrubber
        // must not "repair" it back to the original weight.
        let pinned = xbar.effective_weights();
        assert_eq!(xbar.scrub_parity(), ScrubOutcome::default());
        assert_eq!(xbar.effective_weights(), pinned);
    }

    #[test]
    #[should_panic(expected = "exceed tile geometry")]
    fn rejects_oversized_matrix() {
        let mut rng = SeededRng::new(11);
        let w = Tensor::zeros(&[200, 4]);
        Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
    }
}
