//! The sealed [`Scalar`] trait: the element types a tensor may hold.
//!
//! The workspace is f32-first — every training loop, detector, and crossbar
//! mapping operates on `GenericTensor<f32>` (aliased back to [`Tensor`]).
//! The trait exists so the container, its constructors, and its JSON codecs
//! are written once and instantiated per element type; `i8` is the second
//! instance, carrying quantized activations/weights for the integer analog
//! hot path without round-tripping through `f32` buffers.
//!
//! The trait is **sealed**: downstream crates cannot add instances, which
//! keeps the set of wire formats and kernel instantiations closed and
//! auditable. Float-only numerics (matmul, stats, random sampling, clamp)
//! deliberately stay on the concrete `f32` alias rather than the trait —
//! genericizing them would force rounding-mode decisions into the trait and
//! risk perturbing the bit-exact f32 reproducibility contract.
//!
//! [`Tensor`]: crate::Tensor

use healthmon_serdes::{FromJson, ToJson};
use std::fmt;

mod sealed {
    /// Closes [`super::Scalar`] to the element types defined in this crate.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for i8 {}
}

/// Element type of a [`GenericTensor`](crate::GenericTensor).
///
/// Implemented for `f32` (the default numeric world) and `i8` (quantized
/// integer tensors). Sealed — no further instances can be added outside
/// this crate.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + ToJson
    + FromJson
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Human-readable element-type label (e.g. for diagnostics).
    const DTYPE: &'static str;

    /// Widens the value to `f32`, exactly for both instances (`i8` is a
    /// subset of `f32`'s integer range).
    fn to_f32(self) -> f32;

    /// Narrows an `f32` into this type. For `f32` this is the identity;
    /// for `i8` the value is rounded to the nearest integer (ties away
    /// from zero, following `f32::round`) and saturated to `[-128, 127]`.
    /// Non-finite inputs saturate deterministically (`NaN` maps to 0).
    fn from_f32(v: f32) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: &'static str = "f32";

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
}

impl Scalar for i8 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const DTYPE: &'static str = "i8";

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        if v.is_nan() {
            return 0;
        }
        v.round().clamp(i8::MIN as f32, i8::MAX as f32) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trips_identically() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MAX, f32::INFINITY] {
            assert_eq!(f32::from_f32(v).to_bits(), v.to_bits());
        }
        assert!(f32::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn i8_rounds_and_saturates() {
        assert_eq!(i8::from_f32(0.4), 0);
        assert_eq!(i8::from_f32(0.5), 1);
        assert_eq!(i8::from_f32(-0.5), -1);
        assert_eq!(i8::from_f32(126.6), 127);
        assert_eq!(i8::from_f32(1e9), 127);
        assert_eq!(i8::from_f32(-1e9), -128);
        assert_eq!(i8::from_f32(f32::INFINITY), 127);
        assert_eq!(i8::from_f32(f32::NEG_INFINITY), -128);
        assert_eq!(i8::from_f32(f32::NAN), 0);
    }

    #[test]
    fn identities_and_labels() {
        assert_eq!(<f32 as Scalar>::ZERO, 0.0);
        assert_eq!(<i8 as Scalar>::ONE, 1);
        assert_eq!(<f32 as Scalar>::DTYPE, "f32");
        assert_eq!(<i8 as Scalar>::DTYPE, "i8");
    }
}
