//! Nested timed scopes and the ring-buffer event recorder.
//!
//! A [`span`] is an RAII guard around a scope of work. Spans nest
//! through a thread-local stack: a span's *path* is the `/`-joined
//! chain of enclosing span names (`lifetime/epoch/checkup`), so the
//! merged statistics render as a tree — a poor-man's flamegraph.
//! Per-path stats accumulate calls, total wall time, *self* time (total
//! minus time attributed to child spans), and the maximum single call.
//!
//! Alongside spans, [`record_event`] appends discrete occurrences
//! (lifetime events, repair-ladder transitions) to a bounded ring
//! buffer, timestamped relative to the moment telemetry was enabled.
//!
//! All span data is wall-clock and therefore [`Volatile`]: it never
//! participates in thread-count-invariance comparisons.
//!
//! [`Volatile`]: crate::metrics::Stability::Volatile

use crate::enabled;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring-buffer capacity: old events are overwritten once full.
const RING_CAPACITY: usize = 1024;

/// Merged statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-joined chain of span names, e.g. `lifetime/epoch/checkup`.
    pub path: String,
    /// Number of completed calls.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Total time minus time spent in child spans, nanoseconds.
    pub self_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
}

/// One recorded discrete event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Monotonic sequence number (never reused within a run).
    pub seq: u64,
    /// Nanoseconds since telemetry was enabled.
    pub t_ns: u64,
    /// Event stream name, e.g. `lifetime.event`.
    pub name: &'static str,
    /// Free-form detail line.
    pub detail: String,
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct SpanStats {
    by_path: HashMap<String, SpanSnapshot>,
}

struct Ring {
    events: Vec<EventSnapshot>,
    head: usize,
    next_seq: u64,
}

fn stats() -> &'static Mutex<SpanStats> {
    static STATS: OnceLock<Mutex<SpanStats>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(SpanStats::default()))
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring { events: Vec::new(), head: 0, next_seq: 0 }))
}

/// The process time origin for event timestamps; pinned when telemetry
/// is first enabled (see [`crate::set_enabled`]).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// An RAII guard for a timed scope; created by [`span`]. Statistics are
/// recorded when the guard drops. Inert if telemetry was disabled at
/// creation time.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct Span {
    armed: bool,
}

/// Opens a nested timed scope named `name`. Near-zero cost (one relaxed
/// atomic load) while telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { name, start: Instant::now(), child_ns: 0 });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(frame) = stack.pop() else { return };
            let total_ns = frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(f.name);
                path.push('/');
            }
            path.push_str(frame.name);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
            drop(stack);
            let mut stats = stats().lock().unwrap();
            let entry = stats.by_path.entry(path.clone()).or_insert_with(|| SpanSnapshot {
                path,
                ..SpanSnapshot::default()
            });
            entry.calls += 1;
            entry.total_ns = entry.total_ns.saturating_add(total_ns);
            entry.self_ns = entry.self_ns.saturating_add(self_ns);
            entry.max_ns = entry.max_ns.max(total_ns);
        });
    }
}

/// Appends a discrete event to the ring buffer. No-op while telemetry
/// is disabled. `detail` is only rendered when enabled, so callers that
/// must format a string should pre-gate on [`crate::enabled`].
pub fn record_event(name: &'static str, detail: impl Into<String>) {
    if !enabled() {
        return;
    }
    let t_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let mut ring = ring().lock().unwrap();
    let seq = ring.next_seq;
    ring.next_seq += 1;
    let ev = EventSnapshot { seq, t_ns, name, detail: detail.into() };
    if ring.events.len() < RING_CAPACITY {
        ring.events.push(ev);
    } else {
        let head = ring.head;
        ring.events[head] = ev;
        ring.head = (head + 1) % RING_CAPACITY;
    }
}

/// Collects merged span statistics (sorted by path) and ring-buffer
/// events (oldest first). Used by [`crate::snapshot`].
pub(crate) fn collect() -> (Vec<SpanSnapshot>, Vec<EventSnapshot>) {
    let mut spans: Vec<SpanSnapshot> =
        stats().lock().unwrap().by_path.values().cloned().collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let ring = ring().lock().unwrap();
    let mut events = Vec::with_capacity(ring.events.len());
    events.extend_from_slice(&ring.events[ring.head..]);
    events.extend_from_slice(&ring.events[..ring.head]);
    (spans, events)
}

/// Clears span statistics and the event ring buffer. The sequence
/// counter keeps running so events from different windows stay ordered.
pub(crate) fn reset_spans() {
    stats().lock().unwrap().by_path.clear();
    let mut ring = ring().lock().unwrap();
    ring.events.clear();
    ring.head = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn nested_spans_build_paths_and_self_time() {
        let _g = testlock::exclusive();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let (spans, _) = collect();
        let paths: Vec<_> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["outer", "outer/inner"]);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(outer.calls, 1);
        assert!(inner.total_ns > 0);
        assert!(outer.total_ns >= inner.total_ns);
        // Outer self time excludes the inner span's wall time.
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert!(outer.max_ns == outer.total_ns);
    }

    #[test]
    fn sibling_spans_merge_by_path() {
        let _g = testlock::exclusive();
        for _ in 0..3 {
            let _s = span("repeat");
        }
        let (spans, _) = collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].calls, 3);
    }

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let _g = testlock::exclusive();
        for i in 0..(RING_CAPACITY + 10) {
            record_event("test.event", format!("e{i}"));
        }
        let (_, events) = collect();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(events.first().unwrap().detail, "e10");
        assert_eq!(events.last().unwrap().detail, format!("e{}", RING_CAPACITY + 9));
        // Sequence numbers are strictly increasing oldest -> newest.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = testlock::exclusive();
        crate::set_enabled(false);
        {
            let _s = span("never");
            record_event("never.event", "x");
        }
        crate::set_enabled(true);
        let (spans, events) = collect();
        assert!(spans.is_empty());
        assert!(events.is_empty());
    }
}
