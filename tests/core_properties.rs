//! Property-based tests over the core detection machinery.

use healthmon::{SdcCriterion, TestPatternSet};
use healthmon::stability::series_stats;
use healthmon_faults::FaultModel;
use healthmon_nn::models::tiny_mlp;
use healthmon_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A model is never "detected" against itself by any criterion.
    #[test]
    fn no_false_positive_against_self(seed in 0u64..500, patterns in 1usize..12) {
        let mut rng = SeededRng::new(seed);
        let mut net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[patterns, 6], 0.0, 1.0, &mut rng));
        let mut golden = net.clone();
        let detector = healthmon::Detector::new(&mut golden, set);
        for crit in SdcCriterion::paper_suite() {
            prop_assert!(!detector.is_faulty(&mut net, crit));
        }
    }

    /// Confidence distances are always within [0, 1].
    #[test]
    fn confidence_distance_bounded(seed in 0u64..500, sigma in 0.0f32..1.0) {
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[6, 6], 0.0, 1.0, &mut rng));
        let mut golden = net.clone();
        let detector = healthmon::Detector::new(&mut golden, set);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma }.apply(&mut faulty, &mut SeededRng::new(seed ^ 1));
        let d = detector.confidence_distance(&mut faulty);
        prop_assert!((0.0..=1.0).contains(&d.top_ranked));
        prop_assert!((0.0..=1.0).contains(&d.all_classes));
    }

    /// A tighter SDC-A threshold can only detect at least as much.
    #[test]
    fn sdc_a_threshold_monotone(seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[6, 6], 0.0, 1.0, &mut rng));
        let mut golden = net.clone();
        let detector = healthmon::Detector::new(&mut golden, set);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma: 0.3 }.apply(&mut faulty, &mut SeededRng::new(seed ^ 2));
        let loose = detector.is_faulty(&mut faulty, SdcCriterion::SdcA { threshold: 0.05 });
        let tight = detector.is_faulty(&mut faulty, SdcCriterion::SdcA { threshold: 0.03 });
        // loose detection implies tight detection
        prop_assert!(!loose || tight);
    }

    /// Fault injection with sigma = 0 or p = 0 never triggers detection.
    #[test]
    fn null_faults_never_detected(seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let mut net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[4, 6], 0.0, 1.0, &mut rng));
        let mut golden = net.clone();
        let detector = healthmon::Detector::new(&mut golden, set);
        for fault in [
            FaultModel::ProgrammingVariation { sigma: 0.0 },
            FaultModel::RandomSoftError { probability: 0.0 },
            FaultModel::Drift { nu: 0.5, time: 0.0 },
        ] {
            fault.apply(&mut net, &mut SeededRng::new(seed));
            for crit in SdcCriterion::paper_suite() {
                prop_assert!(!detector.is_faulty(&mut net, crit), "{}", crit.label());
            }
        }
    }

    /// series_stats is scale-equivariant: mean and std scale linearly, CV
    /// is scale-invariant.
    #[test]
    fn series_stats_scaling(values in prop::collection::vec(0.01f32..10.0, 2..32), k in 0.1f32..10.0) {
        let base = series_stats(&values);
        let scaled: Vec<f32> = values.iter().map(|v| v * k).collect();
        let s = series_stats(&scaled);
        prop_assert!((s.mean - base.mean * k).abs() < 1e-2 * (1.0 + s.mean.abs()));
        prop_assert!((s.std - base.std * k).abs() < 1e-2 * (1.0 + s.std.abs()));
        prop_assert!((s.cv - base.cv).abs() < 1e-3 + 1e-2 * base.cv);
    }

    /// Truncating a pattern set preserves the prefix responses.
    #[test]
    fn truncation_consistency(seed in 0u64..200, total in 2usize..10) {
        let mut rng = SeededRng::new(seed);
        let mut net = tiny_mlp(5, 8, 4, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[total, 5], 0.0, 1.0, &mut rng));
        let k = 1 + (seed as usize % total);
        let full = set.logits(&mut net);
        let prefix = set.truncated(k).logits(&mut net);
        for p in 0..k {
            for c in 0..4 {
                prop_assert!((full.at(&[p, c]) - prefix.at(&[p, c])).abs() < 1e-5);
            }
        }
    }
}
