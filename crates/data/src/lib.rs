//! Seed-deterministic synthetic image datasets for the `healthmon`
//! workspace.
//!
//! The paper evaluates on MNIST and CIFAR10. Those datasets cannot be
//! bundled with this repository, so this crate generates structurally
//! analogous synthetic substitutes:
//!
//! * [`SynthDigits`] — 28×28 grayscale, 10 classes: procedurally-rendered
//!   seven-segment digit glyphs with random affine jitter, stroke-width
//!   variation and pixel noise. Plays the role of MNIST (a well-trained
//!   LeNet-5 reaches high-90s accuracy).
//! * [`SynthObjects`] — 32×32×3 colour, 10 classes: shape/colour/texture
//!   composites with heavy appearance jitter and distractors. Plays the
//!   role of CIFAR10 (a well-trained ConvNet-7 lands around 80%).
//!
//! What the paper's experiments exercise is the relationship between
//! weight perturbation, decision-boundary movement, and per-pattern
//! confidence shift — which requires a non-trivially trained classifier
//! with realistic decision geometry, not any particular photographs. The
//! generators are deterministic from a seed, so every experiment in
//! `EXPERIMENTS.md` is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use healthmon_data::{DatasetSpec, SynthDigits};
//!
//! let split = SynthDigits::new(DatasetSpec { train: 64, test: 16, seed: 1, ..Default::default() })
//!     .generate();
//! assert_eq!(split.train.len(), 64);
//! assert_eq!(split.train.images.shape(), &[64, 1, 28, 28]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
mod digits;
mod draw;
mod objects;

pub use dataset::{DataSplit, Dataset};
pub use digits::SynthDigits;
pub use objects::SynthObjects;

/// Specification shared by the dataset generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Number of training samples.
    pub train: usize,
    /// Number of held-out test samples.
    pub test: usize,
    /// Generator seed; the same spec always yields the same split.
    pub seed: u64,
    /// Pixel-noise standard deviation added after rendering (image values
    /// stay clamped to `[0, 1]`). Raising this makes the problem harder.
    pub noise: f32,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec { train: 4000, test: 1000, seed: 7, noise: 0.08 }
    }
}

/// Lower bound of the image value range (both generators emit `[0, 1]`
/// pixels). Used by FGSM and O-TP to clamp perturbed/optimized inputs
/// back onto the valid image manifold.
pub const INPUT_MIN: f32 = 0.0;

/// Upper bound of the image value range. See [`INPUT_MIN`].
pub const INPUT_MAX: f32 = 1.0;
