//! Tiny single-head self-attention block with a residual connection.

use super::{Layer, MatmulEngine, MatmulOrientation};
use crate::init::Init;
use healthmon_tensor::{SeededRng, Tensor};

/// Single-head scaled-dot-product self-attention over `[N, T, D]` inputs:
/// `y = x + softmax(QKᵀ/√D)·V·Wo` with `Q = xWq`, `K = xWk`, `V = xWv`.
///
/// All four projections are square `[D, D]` matrices with no bias, so the
/// block preserves the input shape and exposes exactly four
/// conductance-mappable [`MatmulOrientation::XW`] matmuls (`wq.weight`,
/// `wk.weight`, `wv.weight`, `wo.weight`) through [`Layer::matmuls`]. The
/// attention arithmetic itself (scores, softmax, attention-weighted sum)
/// is activation×activation and stays digital on every backend, mirroring
/// how crossbar accelerators only map the stationary weight matrices.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    dim: usize,
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    grad_wq: Tensor,
    grad_wk: Tensor,
    grad_wv: Tensor,
    grad_wo: Tensor,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    x_flat: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per-sample `[T, T]` softmax attention matrices.
    attn: Vec<Tensor>,
    /// Concatenated `A·V` rows, `[N·T, D]`.
    av: Tensor,
    n: usize,
    t: usize,
}

/// Copies `count` consecutive rows starting at `start` out of a 2-D tensor.
fn rows_block(m: &Tensor, start: usize, count: usize) -> Tensor {
    let cols = m.shape()[1];
    let s = &m.as_slice()[start * cols..(start + count) * cols];
    Tensor::from_vec(s.to_vec(), &[count, cols]).expect("rows_block shape")
}

impl SelfAttention {
    /// Creates a single-head attention block over token width `dim`.
    pub fn new(dim: usize, rng: &mut SeededRng) -> Self {
        let proj = |rng: &mut SeededRng| Init::XavierUniform.sample(&[dim, dim], dim, dim, rng);
        SelfAttention {
            dim,
            wq: proj(rng),
            wk: proj(rng),
            wv: proj(rng),
            wo: proj(rng),
            grad_wq: Tensor::zeros(&[dim, dim]),
            grad_wk: Tensor::zeros(&[dim, dim]),
            grad_wv: Tensor::zeros(&[dim, dim]),
            grad_wo: Tensor::zeros(&[dim, dim]),
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize) {
        assert_eq!(
            input.ndim(),
            3,
            "self_attention expects [N, T, D] input, got {:?}",
            input.shape()
        );
        assert_eq!(
            input.shape()[2],
            self.dim,
            "self_attention token width mismatch: input D = {}, layer D = {}",
            input.shape()[2],
            self.dim
        );
        (input.shape()[0], input.shape()[1])
    }

    /// Per-sample `softmax(QKᵀ/√D)·V`; shared verbatim by the training
    /// forward and the engine-routed inference path so the two stay
    /// bit-identical.
    fn attend(q: &Tensor, k: &Tensor, v: &Tensor, n: usize, t: usize, dim: usize) -> (Tensor, Vec<Tensor>) {
        let inv_sqrt_d = 1.0 / (dim as f32).sqrt();
        let mut av = Tensor::zeros(&[n * t, dim]);
        let mut attn = Vec::with_capacity(n);
        for i in 0..n {
            let qi = rows_block(q, i * t, t);
            let ki = rows_block(k, i * t, t);
            let vi = rows_block(v, i * t, t);
            let a = qi.matmul_bt(&ki).scale(inv_sqrt_d).softmax_rows();
            let avi = a.matmul(&vi);
            for r in 0..t {
                av.set_row(i * t + r, &avi.row(r));
            }
            attn.push(a);
        }
        (av, attn)
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> &'static str {
        "self_attention"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, t) = self.check_input(input);
        let x_flat = input.reshape(&[n * t, self.dim]).expect("attention flatten");
        let q = x_flat.matmul(&self.wq);
        let k = x_flat.matmul(&self.wk);
        let v = x_flat.matmul(&self.wv);
        let (av, attn) = Self::attend(&q, &k, &v, n, t, self.dim);
        let o = av.matmul(&self.wo);
        let y = x_flat.add(&o);
        self.cache = Some(AttnCache { x_flat, q, k, v, attn, av, n, t });
        y.reshape(&[n, t, self.dim]).expect("attention unflatten")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.as_ref().expect("self_attention backward before forward");
        let (n, t, d) = (c.n, c.t, self.dim);
        let g_flat = grad_out.reshape(&[n * t, d]).expect("attention grad flatten");

        // Output projection: o = av·Wo.
        self.grad_wo += &c.av.matmul_at(&g_flat);
        let g_av = g_flat.matmul_bt(&self.wo);

        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let mut dq = Tensor::zeros(&[n * t, d]);
        let mut dk = Tensor::zeros(&[n * t, d]);
        let mut dv = Tensor::zeros(&[n * t, d]);
        for i in 0..n {
            let gi = rows_block(&g_av, i * t, t);
            let a = &c.attn[i];
            let qi = rows_block(&c.q, i * t, t);
            let ki = rows_block(&c.k, i * t, t);
            let vi = rows_block(&c.v, i * t, t);

            let dvi = a.matmul_at(&gi); // Aᵀ·g
            let da = gi.matmul_bt(&vi); // g·Vᵀ
            // Softmax Jacobian per row: dS = A ⊙ (dA − Σⱼ dAⱼAⱼ).
            let mut ds = Tensor::zeros(&[t, t]);
            for r in 0..t {
                let mut dot = 0.0f32;
                for j in 0..t {
                    dot += da.at(&[r, j]) * a.at(&[r, j]);
                }
                for j in 0..t {
                    *ds.at_mut(&[r, j]) = a.at(&[r, j]) * (da.at(&[r, j]) - dot);
                }
            }
            let ds_raw = ds.scale(inv_sqrt_d); // undo the score scaling
            let dqi = ds_raw.matmul(&ki);
            let dki = ds_raw.matmul_at(&qi); // dSᵀ·Q
            for r in 0..t {
                dq.set_row(i * t + r, &dqi.row(r));
                dk.set_row(i * t + r, &dki.row(r));
                dv.set_row(i * t + r, &dvi.row(r));
            }
        }

        self.grad_wq += &c.x_flat.matmul_at(&dq);
        self.grad_wk += &c.x_flat.matmul_at(&dk);
        self.grad_wv += &c.x_flat.matmul_at(&dv);

        // Residual skip plus the three projection paths back into x.
        let mut dx = g_flat;
        dx += &dq.matmul_bt(&self.wq);
        dx += &dk.matmul_bt(&self.wk);
        dx += &dv.matmul_bt(&self.wv);
        dx.reshape(&[n, t, d]).expect("attention grad unflatten")
    }

    fn infer(&self, input: &Tensor, key_prefix: &str, engine: &dyn MatmulEngine) -> Tensor {
        let (n, t) = self.check_input(input);
        let x_flat = input.reshape(&[n * t, self.dim]).expect("attention flatten");
        let q = engine.matmul_xw(&format!("{key_prefix}.wq.weight"), &x_flat, &self.wq);
        let k = engine.matmul_xw(&format!("{key_prefix}.wk.weight"), &x_flat, &self.wk);
        let v = engine.matmul_xw(&format!("{key_prefix}.wv.weight"), &x_flat, &self.wv);
        let (av, _) = Self::attend(&q, &k, &v, n, t, self.dim);
        let o = engine.matmul_xw(&format!("{key_prefix}.wo.weight"), &av, &self.wo);
        x_flat.add(&o).reshape(&[n, t, self.dim]).expect("attention unflatten")
    }

    fn matmuls(&self) -> Vec<(&'static str, MatmulOrientation)> {
        vec![
            ("wq.weight", MatmulOrientation::XW),
            ("wk.weight", MatmulOrientation::XW),
            ("wv.weight", MatmulOrientation::XW),
            ("wo.weight", MatmulOrientation::XW),
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["wq.weight", "wk.weight", "wv.weight", "wo.weight"]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.wq, &mut self.grad_wq),
            (&mut self.wk, &mut self.grad_wk),
            (&mut self.wv, &mut self.grad_wv),
            (&mut self.wo, &mut self.grad_wo),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_wq.map_inplace(|_| 0.0);
        self.grad_wk.map_inplace(|_| 0.0);
        self.grad_wv.map_inplace(|_| 0.0);
        self.grad_wo.map_inplace(|_| 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use crate::layers::DigitalEngine;

    #[test]
    fn preserves_shape() {
        let mut rng = SeededRng::new(5);
        let mut attn = SelfAttention::new(4, &mut rng);
        let x = Tensor::randn(&[2, 3, 4], &mut rng);
        assert_eq!(attn.forward(&x).shape(), &[2, 3, 4]);
    }

    #[test]
    fn input_gradients_check() {
        let mut rng = SeededRng::new(21);
        let mut attn = SelfAttention::new(4, &mut rng);
        let x = Tensor::randn(&[2, 3, 4], &mut rng).map(|v| v * 0.5);
        assert!(gradcheck::input_gradient_error(&mut attn, &x) < 1e-2);
    }

    #[test]
    fn param_gradients_check() {
        let mut rng = SeededRng::new(22);
        let mut attn = SelfAttention::new(3, &mut rng);
        let x = Tensor::randn(&[2, 2, 3], &mut rng).map(|v| v * 0.5);
        assert!(gradcheck::param_gradient_error(&mut attn, &x) < 1e-2);
    }

    #[test]
    fn infer_matches_forward_with_digital_engine() {
        let mut rng = SeededRng::new(23);
        let mut attn = SelfAttention::new(6, &mut rng);
        let x = Tensor::randn(&[3, 4, 6], &mut rng);
        let trained = attn.forward(&x);
        let inferred = attn.infer(&x, "layer0", &DigitalEngine);
        assert_eq!(trained, inferred);
    }

    #[test]
    fn exposes_four_mappable_matmuls() {
        let mut rng = SeededRng::new(1);
        let attn = SelfAttention::new(4, &mut rng);
        let m = attn.matmuls();
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|&(_, o)| o == MatmulOrientation::XW));
        assert_eq!(attn.param_names(), vec!["wq.weight", "wk.weight", "wv.weight", "wo.weight"]);
    }

    #[test]
    #[should_panic(expected = "token width mismatch")]
    fn rejects_wrong_token_width() {
        let mut rng = SeededRng::new(1);
        let mut attn = SelfAttention::new(4, &mut rng);
        attn.forward(&Tensor::zeros(&[1, 2, 5]));
    }
}
