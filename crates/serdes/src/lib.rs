//! **healthmon-serdes** — a minimal, dependency-free JSON layer for the
//! healthmon workspace.
//!
//! The workspace builds fully offline: no registry crates, no `serde`.
//! Everything the experiments persist — weight snapshots, pattern caches,
//! fault specs, campaign checkpoints — goes through this crate instead.
//! It provides:
//!
//! * [`Json`] — an owned JSON value model (object keys keep insertion
//!   order, so output is deterministic).
//! * [`parse`] / [`Json::render`] — a recursive-descent parser and a
//!   compact writer. Floats are written in shortest round-trip form.
//! * [`ToJson`] / [`FromJson`] — conversion traits with implementations
//!   for the primitives and containers the workspace serializes. `f32`
//!   keeps non-finite values representable (as the strings `"NaN"`,
//!   `"inf"`, `"-inf"`), because fault-injected weights can legitimately
//!   be non-finite and must survive a save/load round trip.
//!
//! # Example
//!
//! ```
//! use healthmon_serdes::{from_str, to_string, FromJson, Json, ToJson};
//!
//! let v: Vec<f32> = vec![1.0, 2.5, f32::NAN];
//! let json = to_string(&v);
//! let back: Vec<f32> = from_str(&json).unwrap();
//! assert_eq!(back[1], 2.5);
//! assert!(back[2].is_nan());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod parse;
mod traits;
mod value;

pub use error::JsonError;
pub use parse::parse;
pub use traits::{FromJson, ToJson};
pub use value::Json;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Parses a JSON string and converts it to `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] if the text is not valid JSON or does not match
/// the expected schema of `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Serializes a value as JSON to a file.
///
/// # Errors
///
/// Returns a [`JsonError::Io`] if the file cannot be written.
pub fn write_file<T: ToJson + ?Sized>(
    path: impl AsRef<std::path::Path>,
    value: &T,
) -> Result<(), JsonError> {
    std::fs::write(path.as_ref(), to_string(value))
        .map_err(|e| JsonError::Io(format!("{}: {e}", path.as_ref().display())))
}

/// Reads a JSON file and converts it to `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] if the file cannot be read, parsed, or does not
/// match the expected schema.
pub fn read_file<T: FromJson>(path: impl AsRef<std::path::Path>) -> Result<T, JsonError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| JsonError::Io(format!("{}: {e}", path.as_ref().display())))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("healthmon_serdes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.json");
        let v: Vec<(String, f32)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        write_file(&path, &v).unwrap();
        let back: Vec<(String, f32)> = read_file(&path).unwrap();
        assert_eq!(v, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r: Result<Vec<f32>, JsonError> = read_file("/nonexistent/healthmon.json");
        assert!(matches!(r, Err(JsonError::Io(_))));
    }
}
