//! Property-based tests for the NN framework: gradient correctness on
//! randomly-configured layers and training invariants.

use healthmon_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Tanh};
use healthmon_nn::loss::SoftmaxCrossEntropy;
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::{Adam, Optimizer, Sgd};
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

/// Finite-difference check of the input gradient for a layer given a
/// sum-of-outputs loss. Returns the max relative error.
fn input_grad_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
    let out = layer.forward(input);
    let ones = Tensor::ones(out.shape());
    let analytic = layer.backward(&ones);
    let eps = 1e-2f32;
    let mut max_err = 0.0f32;
    for i in 0..input.len() {
        let mut xp = input.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = input.clone();
        xm.as_mut_slice()[i] -= eps;
        let numeric = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        max_err = max_err.max((a - numeric).abs() / denom);
    }
    max_err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_input_gradients_correct(
        seed in 0u64..10_000,
        inputs in 1usize..8,
        outputs in 1usize..8,
        batch in 1usize..4,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut layer = Dense::new(inputs, outputs, &mut rng);
        let x = Tensor::randn(&[batch, inputs], &mut rng);
        prop_assert!(input_grad_error(&mut layer, &x) < 2e-2);
    }

    #[test]
    fn conv_input_gradients_correct(
        seed in 0u64..10_000,
        channels in 1usize..3,
        filters in 1usize..3,
        pad in 0usize..2,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut layer = Conv2d::new(channels, filters, 3, 1, pad, &mut rng);
        let x = Tensor::randn(&[1, channels, 5, 5], &mut rng);
        prop_assert!(input_grad_error(&mut layer, &x) < 2e-2);
    }

    #[test]
    fn smooth_activation_gradients_correct(seed in 0u64..10_000, batch in 1usize..4) {
        let mut rng = SeededRng::new(seed);
        // Tanh is smooth everywhere, so finite differences are reliable
        // at any input (unlike ReLU's kink).
        let x = Tensor::randn(&[batch, 6], &mut rng);
        let mut layer = Tanh::new();
        prop_assert!(input_grad_error(&mut layer, &x) < 2e-2);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        // Well-separated values keep the argmax stable.
        let mut x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v += i as f32;
        }
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x);
        let g = pool.backward(&Tensor::ones(y.shape()));
        // Exactly one gradient entry per pooling window.
        let nonzero = g.as_slice().iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(nonzero, y.len());
        prop_assert!((g.sum() - y.len() as f32).abs() < 1e-5);
    }

    #[test]
    fn relu_gradient_is_input_mask(seed in 0u64..10_000, n in 1usize..32) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[1, n], &mut rng);
        let mut relu = Relu::new();
        relu.forward(&x);
        let g = relu.backward(&Tensor::ones(&[1, n]));
        for (xv, gv) in x.as_slice().iter().zip(g.as_slice()) {
            prop_assert_eq!(*gv != 0.0, *xv > 0.0);
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        let mut net = tiny_mlp(4, 8, 3, &mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let labels = [0usize, 1, 2, 0];
        let before = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels).loss;
        let mut opt = Sgd::new(0.05);
        for _ in 0..5 {
            net.zero_grads();
            let out = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels);
            net.backward(&out.grad);
            opt.step(&mut net);
        }
        let after = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels).loss;
        prop_assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    }

    #[test]
    fn adam_and_sgd_are_deterministic(seed in 0u64..10_000) {
        let run = |use_adam: bool| -> Vec<(String, Tensor)> {
            let mut rng = SeededRng::new(seed);
            let mut net = tiny_mlp(4, 6, 3, &mut rng);
            let x = Tensor::randn(&[4, 4], &mut rng);
            let labels = [0usize, 1, 2, 0];
            let mut sgd = Sgd::new(0.05);
            let mut adam = Adam::new(0.05);
            for _ in 0..3 {
                net.zero_grads();
                let out = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels);
                net.backward(&out.grad);
                if use_adam {
                    adam.step(&mut net);
                } else {
                    sgd.step(&mut net);
                }
            }
            net.state_dict()
        };
        prop_assert_eq!(run(false), run(false));
        prop_assert_eq!(run(true), run(true));
    }

    #[test]
    fn state_dict_round_trip_preserves_outputs(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        let src = tiny_mlp(5, 7, 4, &mut rng);
        let mut dst = tiny_mlp(5, 7, 4, &mut SeededRng::new(seed ^ 0xFFFF));
        dst.load_state_dict(&src.state_dict()).unwrap();
        let x = Tensor::randn(&[2, 5], &mut rng);
        let mut src = src;
        prop_assert_eq!(src.forward(&x), dst.forward(&x));
    }

    #[test]
    fn loss_gradient_rows_sum_to_zero(seed in 0u64..10_000, classes in 2usize..8) {
        // softmax(z) - onehot sums to 0 across classes for each sample.
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn(&[3, classes], &mut rng);
        let labels: Vec<usize> = (0..3).map(|i| i % classes).collect();
        let out = SoftmaxCrossEntropy::with_labels(&logits, &labels);
        for row in 0..3 {
            prop_assert!(out.grad.row(row).sum().abs() < 1e-5);
        }
    }

    #[test]
    fn network_forward_is_pure(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        let mut net: Network = tiny_mlp(4, 8, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let a = net.forward(&x);
        let b = net.forward(&x);
        prop_assert_eq!(a, b);
    }
}
