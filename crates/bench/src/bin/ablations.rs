//! Ablation studies of the design choices behind each method (LeNet-5):
//!
//! * **O-TP α** — the loss-balance coefficient. α → 1 optimizes only for
//!   clean-model confusion, α → 0 only for fault-model confidence; the
//!   paper's α = 0.5 balances both.
//! * **AET ε** — the FGSM budget of the baseline.
//! * **C-TP pool size** — corner-data quality as a function of how many
//!   candidate images the selection can draw from.
//! * **O-TP reference-fault σ** — how the choice of reference fault model
//!   affects generalization to unseen error levels.

use healthmon::report::{distance, percent, TextTable};
use healthmon::{AetGenerator, CtpGenerator, Detector, OtpGenerator, SdcCriterion};
use healthmon_bench::harness::{emit, train_or_load, Benchmark, CAMPAIGN_SEED, PATTERN_SEED};
use healthmon_faults::{FaultCampaign, FaultModel};
use std::fmt::Write as _;
use healthmon_tensor::SeededRng;

fn main() {
    let benchmark = Benchmark::Lenet5Digits;
    let mut trained = train_or_load(benchmark);
    let count: usize = std::env::var("HEALTHMON_MODELS_PER_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let eval_fault = FaultModel::ProgrammingVariation { sigma: 0.25 };
    let crit = SdcCriterion::SdcA { threshold: 0.03 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablations on {} ({count} fault models, eval fault {}, criterion {})\n",
        benchmark.label(),
        eval_fault.describe(),
        crit.label()
    );

    let evaluate = |detector: &Detector, golden: &healthmon_nn::Network| -> (f32, f32) {
        let rate = detector.detection_rate(golden, &eval_fault, count, CAMPAIGN_SEED, crit);
        let ds = detector.campaign_distances(golden, &eval_fault, count, CAMPAIGN_SEED);
        let mean = ds.iter().map(|d| d.all_classes).sum::<f32>() / ds.len() as f32;
        (rate, mean)
    };

    // --- O-TP alpha sweep ---------------------------------------------------
    let reference = FaultCampaign::new(&trained.model, PATTERN_SEED)
        .model(&benchmark.otp_reference_fault(), 0);
    let mut table = TextTable::new(vec![
        "O-TP alpha".into(),
        "mean distance".into(),
        "detection rate".into(),
        "converged".into(),
    ]);
    for alpha in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let (set, outcomes) = OtpGenerator::new()
            .alpha(alpha)
            .max_iters(400)
            .generate(&trained.model, &reference, &mut SeededRng::new(41));
        let detector = Detector::new(&trained.model, set);
        let (rate, mean) = evaluate(&detector, &trained.model);
        table.push_row(vec![
            format!("{alpha:.1}"),
            distance(mean),
            percent(rate),
            format!("{}/{}", outcomes.iter().filter(|o| o.converged).count(), outcomes.len()),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());

    // --- AET epsilon sweep ---------------------------------------------------
    let mut table = TextTable::new(vec![
        "AET epsilon".into(),
        "mean distance".into(),
        "detection rate".into(),
    ]);
    for eps in [0.05f32, 0.1, 0.15, 0.2, 0.3] {
        let set = AetGenerator::new(50, eps).generate(
            &mut trained.model,
            &trained.data.test,
            &mut SeededRng::new(42),
        );
        let detector = Detector::new(&trained.model, set);
        let (rate, mean) = evaluate(&detector, &trained.model);
        table.push_row(vec![format!("{eps:.2}"), distance(mean), percent(rate)]);
    }
    let _ = writeln!(out, "{}", table.render());

    // --- C-TP candidate-pool sweep -------------------------------------------
    let mut table = TextTable::new(vec![
        "C-TP pool size".into(),
        "mean distance".into(),
        "detection rate".into(),
    ]);
    for pool in [100usize, 300, 1000] {
        let idx: Vec<usize> = (0..pool.min(trained.data.test.len())).collect();
        let subset = trained.data.test.subset(&idx);
        let set = CtpGenerator::new(50).select(&mut trained.model, &subset);
        let detector = Detector::new(&trained.model, set);
        let (rate, mean) = evaluate(&detector, &trained.model);
        table.push_row(vec![pool.to_string(), distance(mean), percent(rate)]);
    }
    let _ = writeln!(out, "{}", table.render());

    // --- O-TP reference-fault sigma sweep -------------------------------------
    let mut table = TextTable::new(vec![
        "O-TP reference sigma".into(),
        "mean distance".into(),
        "detection rate".into(),
    ]);
    for ref_sigma in [0.1f32, 0.2, 0.3, 0.5] {
        let reference = FaultCampaign::new(&trained.model, PATTERN_SEED)
            .model(&FaultModel::ProgrammingVariation { sigma: ref_sigma }, 0);
        let (set, _) = OtpGenerator::new()
            .max_iters(400)
            .generate(&trained.model, &reference, &mut SeededRng::new(43));
        let detector = Detector::new(&trained.model, set);
        let (rate, mean) = evaluate(&detector, &trained.model);
        table.push_row(vec![format!("{ref_sigma:.1}"), distance(mean), percent(rate)]);
    }
    let _ = writeln!(out, "{}", table.render());

    emit("ablations", &out);
}
