//! Zoo-wide campaign cost: one detection-campaign case per registered
//! architecture, so the per-checkup cost of the paper's concurrent test
//! is tracked across every model the CLI can field.
//!
//! Each case builds the zoo model fresh from a fixed seed, selects a
//! small synthetic pattern set shaped for that architecture, and times a
//! bounded fault-detection campaign (programming-variation faults, SDC-1
//! and SDC-A criteria) — the same work one fleet device does per checkup,
//! minus aging. `scripts/ci.sh --bench-smoke` folds the JSON report into
//! `BENCH_pr10.json`.

use healthmon::{Detector, SdcCriterion, TestPatternSet};
use healthmon_bench::timing::TimingHarness;
use healthmon_faults::FaultModel;
use healthmon_nn::zoo;
use healthmon_tensor::{SeededRng, Tensor};
use std::hint::black_box;

/// Patterns per campaign; small enough that even convnet7 finishes a
/// smoke sample in well under a second.
const PATTERNS: usize = 6;

fn main() {
    let mut group = TimingHarness::new("zoo_campaign").samples(5);
    let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
    let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];
    for spec in zoo::ZOO {
        let mut rng = SeededRng::new(0x200a);
        let net = spec.build(&mut rng);
        let mut shape = vec![PATTERNS];
        shape.extend_from_slice(spec.input_shape);
        let patterns = TestPatternSet::new("zoo-bench", Tensor::randn(&shape, &mut rng));
        let detector = Detector::new(&net, patterns);
        let mut run = || black_box(detector.detection_rates(&net, &fault, 4, 5, &criteria));
        group.case(&format!("campaign/{}", spec.name), &mut run);
    }
    healthmon_bench::timing::write_json_report();
}
