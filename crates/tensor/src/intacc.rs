//! Integer-domain accumulation kernels for quantized crossbar emulation.
//!
//! A ReRAM tile that quantizes its inputs through a DAC and stores
//! cell-resolution conductance codes computes, per bit line, an integer
//! dot product: `acc_j = Σ_i x_i · w_ij` with `x_i` a DAC level index and
//! `w_ij` a signed differential conductance code. This module provides
//! that accumulate as a row-block kernel over an `i32` accumulator, with
//! a runtime-dispatched AVX2 variant and a portable scalar fallback.
//!
//! # Bit-exactness
//!
//! Integer addition is associative, so — unlike the `f32` GEMM in
//! [`crate::Tensor::matmul`], which must pin its accumulation order — the
//! AVX2 and scalar kernels are bit-identical by construction, and callers
//! may split work across threads or row blocks freely as long as every
//! `(i, j)` product is added exactly once. Callers are responsible for
//! guaranteeing the accumulator cannot overflow (the crossbar layer gates
//! the integer path on `max_code · max_level · rows` staying far below
//! `i32::MAX`).

use healthmon_telemetry as tel;

// Dispatch tallies mirror `gemm.row_blocks.*`: which kernel ran is a
// property of the host CPU, not of the computation, so the counts are
// Volatile (they differ between AVX2 and non-AVX2 hosts).
static I32_BLOCKS_AVX2: tel::Counter =
    tel::Counter::new("gemm.i32_blocks.avx2", tel::Stability::Volatile);
static I32_BLOCKS_SCALAR: tel::Counter =
    tel::Counter::new("gemm.i32_blocks.scalar", tel::Stability::Volatile);

/// Width granularity of the integer kernels: weight-code rows must be
/// padded to a multiple of this many columns so the vector kernel never
/// needs a masked tail.
pub const LANES: usize = 8;

/// Whether the running CPU supports AVX2 (checked once per process).
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Whether the running CPU supports AVX2 (always false off x86-64).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// Accumulates one row block of the integer crossbar product:
/// `acc[j] += Σ_i x[i] · w[i·width + j]` for every `j < width`.
///
/// `x` holds one DAC code per word line of the block, `w` the signed
/// conductance codes of those rows laid out row-major at `width` columns
/// (zero-padded past the logical column count), and `acc` the running
/// bit-line accumulator.
///
/// # Panics
///
/// Panics if `width` is not a multiple of [`LANES`], `acc.len() != width`,
/// or `w.len() != x.len() * width`.
pub fn accumulate_rows(x: &[i32], w: &[i16], width: usize, acc: &mut [i32]) {
    assert!(width.is_multiple_of(LANES), "width {width} must be a multiple of {LANES}");
    assert_eq!(acc.len(), width, "accumulator width mismatch");
    assert_eq!(w.len(), x.len() * width, "weight-code block shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        I32_BLOCKS_AVX2.inc();
        // SAFETY: `avx2_available()` verified CPU support; the asserts
        // above establish the exact bounds the vector loop walks.
        unsafe { accumulate_rows_avx2(x, w, width, acc) };
        return;
    }
    I32_BLOCKS_SCALAR.inc();
    for (&xi, w_row) in x.iter().zip(w.chunks_exact(width)) {
        for (a, &wv) in acc.iter_mut().zip(w_row) {
            *a += xi * wv as i32;
        }
    }
}

/// Four-batch-row variant of [`accumulate_rows`]: the same row block of
/// weight codes accumulated against four independent DAC-code vectors in
/// one sweep, so each `i16 → i32` weight load is amortized over four
/// products. `acc` holds the four accumulators back to back
/// (`acc[b·width + j]` for batch row `b`).
///
/// Integer addition is exact, so the result is bit-identical to four
/// separate [`accumulate_rows`] calls — callers may mix the two freely
/// (e.g. a blocked main loop with a scalar remainder).
///
/// # Panics
///
/// Panics if `width` is not a multiple of [`LANES`], the four DAC-code
/// slices differ in length, `acc.len() != 4 * width`, or
/// `w.len() != x[0].len() * width`.
pub fn accumulate_rows_x4(x: [&[i32]; 4], w: &[i16], width: usize, acc: &mut [i32]) {
    assert!(width.is_multiple_of(LANES), "width {width} must be a multiple of {LANES}");
    assert_eq!(acc.len(), 4 * width, "accumulator width mismatch");
    let rows = x[0].len();
    assert!(x.iter().all(|xi| xi.len() == rows), "DAC-code rows differ in length");
    assert_eq!(w.len(), rows * width, "weight-code block shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        I32_BLOCKS_AVX2.add(4);
        // SAFETY: `avx2_available()` verified CPU support; the asserts
        // above establish the exact bounds the vector loop walks.
        unsafe { accumulate_rows_x4_avx2(x, w, width, acc) };
        return;
    }
    I32_BLOCKS_SCALAR.add(4);
    for (i, w_row) in w.chunks_exact(width).enumerate() {
        for (b, xb) in x.iter().enumerate() {
            let xi = xb[i];
            for (a, &wv) in acc[b * width..(b + 1) * width].iter_mut().zip(w_row) {
                *a += xi * wv as i32;
            }
        }
    }
}

/// [`accumulate_rows_x4`] on AVX2: one widened weight load feeds four
/// broadcast-multiply-adds, quadrupling the arithmetic per memory access.
/// Same integer ops as the scalar loop, so results match bit-for-bit.
#[cfg(target_arch = "x86_64")]
// The row index addresses all four batch slices at once; an iterator
// chain over one of them would obscure the symmetry.
#[allow(clippy::needless_range_loop)]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_rows_x4_avx2(x: [&[i32]; 4], w: &[i16], width: usize, acc: &mut [i32]) {
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepi16_epi32, _mm256_loadu_si256,
        _mm256_mullo_epi32, _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadu_si128,
    };
    let rows = x[0].len();
    for j in (0..width).step_by(LANES) {
        unsafe {
            let p = acc.as_mut_ptr();
            let mut a0 = _mm256_loadu_si256(p.add(j) as *const __m256i);
            let mut a1 = _mm256_loadu_si256(p.add(width + j) as *const __m256i);
            let mut a2 = _mm256_loadu_si256(p.add(2 * width + j) as *const __m256i);
            let mut a3 = _mm256_loadu_si256(p.add(3 * width + j) as *const __m256i);
            for i in 0..rows {
                let wv = _mm_loadu_si128(w.as_ptr().add(i * width + j) as *const __m128i);
                let wi = _mm256_cvtepi16_epi32(wv);
                a0 = _mm256_add_epi32(a0, _mm256_mullo_epi32(wi, _mm256_set1_epi32(x[0][i])));
                a1 = _mm256_add_epi32(a1, _mm256_mullo_epi32(wi, _mm256_set1_epi32(x[1][i])));
                a2 = _mm256_add_epi32(a2, _mm256_mullo_epi32(wi, _mm256_set1_epi32(x[2][i])));
                a3 = _mm256_add_epi32(a3, _mm256_mullo_epi32(wi, _mm256_set1_epi32(x[3][i])));
            }
            _mm256_storeu_si256(p.add(j) as *mut __m256i, a0);
            _mm256_storeu_si256(p.add(width + j) as *mut __m256i, a1);
            _mm256_storeu_si256(p.add(2 * width + j) as *mut __m256i, a2);
            _mm256_storeu_si256(p.add(3 * width + j) as *mut __m256i, a3);
        }
    }
}

/// [`accumulate_rows`] with each group of [`LANES`] bit lines held in one
/// 256-bit lane group: weight codes widen `i16 → i32` on load, multiply
/// against the broadcast DAC code, and add into the accumulator — the
/// identical integer operations as the scalar loop, so results match
/// bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_rows_avx2(x: &[i32], w: &[i16], width: usize, acc: &mut [i32]) {
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepi16_epi32, _mm256_loadu_si256,
        _mm256_mullo_epi32, _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadu_si128,
    };
    for j in (0..width).step_by(LANES) {
        unsafe {
            let mut accv = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
            for (i, &xi) in x.iter().enumerate() {
                let wv = _mm_loadu_si128(w.as_ptr().add(i * width + j) as *const __m128i);
                let wi = _mm256_cvtepi16_epi32(wv);
                accv = _mm256_add_epi32(accv, _mm256_mullo_epi32(wi, _mm256_set1_epi32(xi)));
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(j) as *mut __m256i, accv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    fn reference(x: &[i32], w: &[i16], width: usize, acc: &mut [i32]) {
        for (i, &xi) in x.iter().enumerate() {
            for j in 0..width {
                acc[j] += xi * w[i * width + j] as i32;
            }
        }
    }

    fn random_case(rows: usize, width: usize, seed: u64) -> (Vec<i32>, Vec<i16>) {
        let mut rng = SeededRng::new(seed);
        let x: Vec<i32> = (0..rows).map(|_| rng.uniform(0.0, 255.0) as i32).collect();
        let w: Vec<i16> =
            (0..rows * width).map(|_| rng.uniform(-255.0, 255.0) as i16).collect();
        (x, w)
    }

    #[test]
    fn matches_reference_on_odd_shapes() {
        for &(rows, width) in &[(1usize, 8usize), (3, 16), (32, 128), (17, 40), (128, 8)] {
            let (x, w) = random_case(rows, width, 7 + rows as u64);
            let mut got = vec![0i32; width];
            let mut want = vec![0i32; width];
            accumulate_rows(&x, &w, width, &mut got);
            reference(&x, &w, width, &mut want);
            assert_eq!(got, want, "rows={rows} width={width}");
        }
    }

    #[test]
    fn accumulates_on_top_of_existing_values() {
        let (x, w) = random_case(16, 24, 11);
        let mut got: Vec<i32> = (0..24).map(|j| j * 1000).collect();
        let mut want = got.clone();
        accumulate_rows(&x, &w, 24, &mut got);
        reference(&x, &w, 24, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn split_row_blocks_sum_to_whole() {
        // Accumulating [0, 13) then [13, 32) must equal one [0, 32) pass:
        // the contract that lets callers chunk by row block freely.
        let (x, w) = random_case(32, 48, 13);
        let mut whole = vec![0i32; 48];
        accumulate_rows(&x, &w, 48, &mut whole);
        let mut split = vec![0i32; 48];
        accumulate_rows(&x[..13], &w[..13 * 48], 48, &mut split);
        accumulate_rows(&x[13..], &w[13 * 48..], 48, &mut split);
        assert_eq!(whole, split);
    }

    #[test]
    fn negative_codes_and_extremes() {
        let x = vec![255, 0, 1, 255];
        let w: Vec<i16> = vec![
            255, -255, 0, 1, -1, 127, -128, 255, //
            -255, 255, 0, -1, 1, -127, 128, -255, //
            0, 0, 0, 0, 0, 0, 0, 0, //
            255, 255, -255, -255, 1, -1, 0, 127,
        ];
        let mut got = vec![0i32; 8];
        let mut want = vec![0i32; 8];
        accumulate_rows(&x, &w, 8, &mut got);
        reference(&x, &w, 8, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_unpadded_width() {
        accumulate_rows(&[1], &[0i16; 7], 7, &mut [0i32; 7]);
    }

    #[test]
    fn x4_matches_four_single_calls() {
        // The blocked kernel must be bit-identical to four independent
        // single-row accumulations — the contract that lets the crossbar
        // layer mix a blocked main loop with a scalar batch remainder.
        for &(rows, width) in &[(1usize, 8usize), (17, 40), (32, 128), (128, 8)] {
            let (_, w) = random_case(rows, width, 31 + rows as u64);
            let xs: Vec<Vec<i32>> = (0..4)
                .map(|b| random_case(rows, width, 100 + b as u64).0)
                .collect();
            let mut got: Vec<i32> = (0..4 * width).map(|j| j as i32 * 3).collect();
            let mut want = got.clone();
            accumulate_rows_x4([&xs[0], &xs[1], &xs[2], &xs[3]], &w, width, &mut got);
            for b in 0..4 {
                accumulate_rows(&xs[b], &w, width, &mut want[b * width..(b + 1) * width]);
            }
            assert_eq!(got, want, "rows={rows} width={width}");
        }
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn x4_rejects_short_accumulator() {
        let x = [1i32];
        accumulate_rows_x4([&x, &x, &x, &x], &[0i16; 8], 8, &mut [0i32; 8]);
    }
}
