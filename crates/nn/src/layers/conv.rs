//! 2-D convolution via im2col + matmul.

use super::{Layer, MatmulEngine, MatmulOrientation};
use crate::init::Init;
use healthmon_tensor::{SeededRng, Tensor};

/// A 2-D convolution layer over `[N, C, H, W]` inputs.
///
/// Kernels are stored `[filters, in_channels, kh, kw]` and applied through
/// an im2col transformation so the inner loop is a single (thread-parallel)
/// matrix multiplication — the same dataflow a ReRAM crossbar realizes in
/// analog, which is why the fault models in `healthmon-faults` perturb
/// these weights directly.
///
/// # Example
///
/// ```
/// use healthmon_nn::layers::{Conv2d, Layer};
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut conv = Conv2d::new(1, 6, 5, 1, 2, &mut rng); // 6@5x5, stride 1, pad 2
/// let y = conv.forward(&Tensor::zeros(&[2, 1, 28, 28]));
/// assert_eq!(y.shape(), &[2, 6, 28, 28]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    filters: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[filters, in_channels * kernel * kernel]` — the crossbar-mapped view.
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_col: Option<Tensor>,
    cached_input_shape: Option<Vec<usize>>,
    /// Retired im2col buffer, reused by the next same-shape forward so
    /// steady-state training/inference stops allocating the largest
    /// intermediate of the whole network every pass.
    col_workspace: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal kernels and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "conv kernel/stride must be non-zero");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = filters * kernel * kernel;
        Conv2d {
            in_channels,
            filters,
            kernel,
            stride,
            padding,
            weight: Init::HeNormal.sample(&[filters, fan_in], fan_in, fan_out, rng),
            bias: Tensor::zeros(&[filters]),
            grad_weight: Tensor::zeros(&[filters, fan_in]),
            grad_bias: Tensor::zeros(&[filters]),
            cached_col: None,
            cached_input_shape: None,
            col_workspace: None,
        }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Spatial output extent for a given input extent.
    fn out_extent(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "conv kernel {} larger than padded input extent {padded}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// im2col: unfold input patches into a `[C·K·K, N·OH·OW]` matrix,
    /// reusing the retired workspace buffer when its shape still fits.
    fn im2col(&mut self, input: &Tensor, oh: usize, ow: usize) -> Tensor {
        let (n, c) = (input.shape()[0], input.shape()[1]);
        let k = self.kernel;
        let ckk = c * k * k;
        let cols = n * oh * ow;
        let col = match self.col_workspace.take() {
            Some(mut ws) if ws.shape() == [ckk, cols] => {
                // Padding positions are never written below, so the
                // recycled buffer must start from zero like a fresh one.
                ws.as_mut_slice().fill(0.0);
                ws
            }
            _ => Tensor::zeros(&[ckk, cols]),
        };
        self.unfold_into(input, oh, ow, col)
    }

    /// The im2col fill loop over a zeroed `[C·K·K, N·OH·OW]` buffer; shared
    /// by the caching `im2col` (workspace reuse) and the `&self` inference
    /// path (fresh buffer), so both produce bitwise-identical patches.
    fn unfold_into(&self, input: &Tensor, oh: usize, ow: usize, mut col: Tensor) -> Tensor {
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.kernel;
        let cols = n * oh * ow;
        let x = input.as_slice();
        let cm = col.as_mut_slice();
        for ci in 0..c {
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ci * k + kh) * k + kw;
                    let row_base = row * cols;
                    for ni in 0..n {
                        let plane = (ni * c + ci) * h * w;
                        let col_base = ni * oh * ow;
                        for ph in 0..oh {
                            let ih = (ph * self.stride + kh) as isize - self.padding as isize;
                            if ih < 0 || ih >= h as isize {
                                continue;
                            }
                            let in_row = plane + ih as usize * w;
                            let out_row = row_base + col_base + ph * ow;
                            for pw in 0..ow {
                                let iw = (pw * self.stride + kw) as isize - self.padding as isize;
                                if iw < 0 || iw >= w as isize {
                                    continue;
                                }
                                cm[out_row + pw] = x[in_row + iw as usize];
                            }
                        }
                    }
                }
            }
        }
        col
    }

    /// col2im: fold a `[C·K·K, N·OH·OW]` gradient matrix back onto the
    /// input, accumulating overlapping patches.
    fn col2im(&self, col: &Tensor, input_shape: &[usize], oh: usize, ow: usize) -> Tensor {
        let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
        let k = self.kernel;
        let cols = n * oh * ow;
        let cm = col.as_slice();
        let mut out = Tensor::zeros(input_shape);
        let o = out.as_mut_slice();
        for ci in 0..c {
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ci * k + kh) * k + kw;
                    let row_base = row * cols;
                    for ni in 0..n {
                        let plane = (ni * c + ci) * h * w;
                        let col_base = ni * oh * ow;
                        for ph in 0..oh {
                            let ih = (ph * self.stride + kh) as isize - self.padding as isize;
                            if ih < 0 || ih >= h as isize {
                                continue;
                            }
                            let in_row = plane + ih as usize * w;
                            let src_row = row_base + col_base + ph * ow;
                            for pw in 0..ow {
                                let iw = (pw * self.stride + kw) as isize - self.padding as isize;
                                if iw < 0 || iw >= w as isize {
                                    continue;
                                }
                                o[in_row + iw as usize] += cm[src_row + pw];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// `[F, N·OH·OW]` → `[N, F, OH, OW]`.
    fn gather_output(&self, mat: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let f = self.filters;
        let plane = oh * ow;
        let cols = n * plane;
        let m = mat.as_slice();
        let mut out = Tensor::zeros(&[n, f, oh, ow]);
        let o = out.as_mut_slice();
        for fi in 0..f {
            let src = fi * cols;
            for ni in 0..n {
                let dst = (ni * f + fi) * plane;
                let s = src + ni * plane;
                o[dst..dst + plane].copy_from_slice(&m[s..s + plane]);
            }
        }
        out
    }

    /// `[N, F, OH, OW]` → `[F, N·OH·OW]` (inverse of `gather_output`).
    fn scatter_grad(&self, grad: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let f = self.filters;
        let plane = oh * ow;
        let cols = n * plane;
        let g = grad.as_slice();
        let mut out = Tensor::zeros(&[f, cols]);
        let o = out.as_mut_slice();
        for ni in 0..n {
            for fi in 0..f {
                let src = (ni * f + fi) * plane;
                let dst = fi * cols + ni * plane;
                o[dst..dst + plane].copy_from_slice(&g[src..src + plane]);
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "conv2d expects [N,C,H,W], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "conv2d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
        let oh = self.out_extent(h);
        let ow = self.out_extent(w);
        // Forward-only callers (inference sweeps) never reach backward, so
        // retire the previous pass's unfolded patches here before they are
        // replaced — that buffer is what im2col recycles.
        if let Some(stale) = self.cached_col.take() {
            self.col_workspace = Some(stale);
        }
        let col = self.im2col(input, oh, ow);
        let mut out_mat = self.weight.matmul(&col); // [F, N*OH*OW]
        let cols = n * oh * ow;
        let bias = self.bias.as_slice();
        let om = out_mat.as_mut_slice();
        for (fi, &b) in bias.iter().enumerate() {
            if b != 0.0 {
                for v in &mut om[fi * cols..(fi + 1) * cols] {
                    *v += b;
                }
            }
        }
        let out = self.gather_output(&out_mat, n, oh, ow);
        self.cached_col = Some(col);
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn infer(&self, input: &Tensor, key_prefix: &str, engine: &dyn MatmulEngine) -> Tensor {
        assert_eq!(input.ndim(), 4, "conv2d expects [N,C,H,W], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "conv2d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = self.out_extent(h);
        let ow = self.out_extent(w);
        let ckk = c * self.kernel * self.kernel;
        let cols = n * oh * ow;
        let col = self.unfold_into(input, oh, ow, Tensor::zeros(&[ckk, cols]));
        let mut out_mat =
            engine.matmul_wx(&format!("{key_prefix}.weight"), &self.weight, &col); // [F, N*OH*OW]
        let bias = self.bias.as_slice();
        let om = out_mat.as_mut_slice();
        for (fi, &b) in bias.iter().enumerate() {
            if b != 0.0 {
                for v in &mut om[fi * cols..(fi + 1) * cols] {
                    *v += b;
                }
            }
        }
        self.gather_output(&out_mat, n, oh, ow)
    }

    fn matmul_orientation(&self) -> Option<MatmulOrientation> {
        Some(MatmulOrientation::WX)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let col = self.cached_col.take().expect("conv2d backward before forward");
        let input_shape = self
            .cached_input_shape
            .clone()
            .expect("conv2d backward before forward");
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let oh = self.out_extent(h);
        let ow = self.out_extent(w);
        assert_eq!(
            grad_out.shape(),
            &[n, self.filters, oh, ow],
            "conv2d grad shape mismatch"
        );
        let g_mat = self.scatter_grad(grad_out, n, oh, ow); // [F, N*OH*OW]
        // dW = G · colᵀ, db = row sums of G, dcol = Wᵀ · G
        self.grad_weight += &g_mat.matmul_bt(&col);
        {
            let cols = n * oh * ow;
            let g = g_mat.as_slice();
            for (fi, gb) in self.grad_bias.as_mut_slice().iter_mut().enumerate() {
                *gb += g[fi * cols..(fi + 1) * cols].iter().sum::<f32>();
            }
        }
        let grad_col = self.weight.matmul_at(&g_mat); // [CKK, N*OH*OW]
        let out = self.col2im(&grad_col, &input_shape, oh, ow);
        // Retire the unfolded-patch buffer for the next forward pass.
        self.col_workspace = Some(col);
        out
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["weight", "bias"]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    /// Direct (reference) convolution for testing the im2col path.
    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Tensor {
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = (h + 2 * padding - kernel) / stride + 1;
        let ow = (w + 2 * padding - kernel) / stride + 1;
        let mut out = Tensor::zeros(&[n, filters, oh, ow]);
        for ni in 0..n {
            for fi in 0..filters {
                for ph in 0..oh {
                    for pw in 0..ow {
                        let mut acc = bias.as_slice()[fi];
                        for ci in 0..c {
                            for kh in 0..kernel {
                                for kw in 0..kernel {
                                    let ih = (ph * stride + kh) as isize - padding as isize;
                                    let iw = (pw * stride + kw) as isize - padding as isize;
                                    if ih < 0 || iw < 0 || ih >= h as isize || iw >= w as isize {
                                        continue;
                                    }
                                    let x = input.at(&[ni, ci, ih as usize, iw as usize]);
                                    let wv =
                                        weight.at(&[fi, (ci * kernel + kh) * kernel + kw]);
                                    acc += x * wv;
                                }
                            }
                        }
                        *out.at_mut(&[ni, fi, ph, pw]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = SeededRng::new(1);
        for &(c, f, k, s, p, h) in &[(1, 2, 3, 1, 0, 5), (2, 3, 3, 1, 1, 6), (3, 4, 5, 2, 2, 9)] {
            let mut conv = Conv2d::new(c, f, k, s, p, &mut rng);
            // Random bias so the bias path is exercised too.
            for b in conv.bias.as_mut_slice() {
                *b = rng.normal(0.0, 0.5);
            }
            let x = Tensor::randn(&[2, c, h, h], &mut rng);
            let got = conv.forward(&x);
            let want = naive_conv(&x, &conv.weight, &conv.bias, f, k, s, p);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-4, "conv mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn output_shape_formulas() {
        let mut rng = SeededRng::new(2);
        // "same" padding keeps extent with stride 1.
        let mut conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        assert_eq!(conv.forward(&Tensor::zeros(&[1, 1, 7, 7])).shape(), &[1, 4, 7, 7]);
        // valid 5x5 shrinks by 4.
        let mut conv = Conv2d::new(1, 4, 5, 1, 0, &mut rng);
        assert_eq!(conv.forward(&Tensor::zeros(&[1, 1, 14, 14])).shape(), &[1, 4, 10, 10]);
        // stride 2 halves.
        let mut conv = Conv2d::new(1, 4, 2, 2, 0, &mut rng);
        assert_eq!(conv.forward(&Tensor::zeros(&[1, 1, 8, 8])).shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let err = gradcheck::input_gradient_error(&mut conv, &x);
        assert!(err < 1e-2, "conv input grad error {err}");
    }

    #[test]
    fn param_gradient_check() {
        let mut rng = SeededRng::new(4);
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[2, 1, 5, 5], &mut rng);
        let err = gradcheck::param_gradient_error(&mut conv, &x);
        assert!(err < 1e-2, "conv param grad error {err}");
    }

    #[test]
    fn strided_gradient_check() {
        let mut rng = SeededRng::new(5);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 7, 7], &mut rng);
        let err = gradcheck::input_gradient_error(&mut conv, &x);
        assert!(err < 1e-2, "strided conv grad error {err}");
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn rejects_wrong_channel_count() {
        let mut rng = SeededRng::new(6);
        Conv2d::new(3, 2, 3, 1, 1, &mut rng).forward(&Tensor::zeros(&[1, 1, 8, 8]));
    }
}
