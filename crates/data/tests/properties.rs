//! Property-based tests for the synthetic dataset generators.

use healthmon_data::{DatasetSpec, SynthDigits, SynthObjects, INPUT_MAX, INPUT_MIN};
use healthmon_tensor::SeededRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn digits_pixels_always_in_range(seed in 0u64..10_000, noise in 0.0f32..0.4) {
        let spec = DatasetSpec { train: 12, test: 4, seed, noise };
        let split = SynthDigits::new(spec).generate();
        prop_assert!(split.train.images.min() >= INPUT_MIN);
        prop_assert!(split.train.images.max() <= INPUT_MAX);
    }

    #[test]
    fn objects_pixels_always_in_range(seed in 0u64..10_000, noise in 0.0f32..0.4) {
        let spec = DatasetSpec { train: 12, test: 4, seed, noise };
        let split = SynthObjects::new(spec).generate();
        prop_assert!(split.train.images.min() >= INPUT_MIN);
        prop_assert!(split.train.images.max() <= INPUT_MAX);
    }

    #[test]
    fn digits_never_blank(seed in 0u64..10_000, digit in 0usize..10) {
        let mut rng = SeededRng::new(seed);
        let img = SynthDigits::render(digit, 0.0, &mut rng);
        // Every rendered digit carries visible ink.
        prop_assert!(img.sum() > 3.0, "digit {digit} nearly blank: {}", img.sum());
    }

    #[test]
    fn generation_deterministic(seed in 0u64..10_000) {
        let spec = DatasetSpec { train: 10, test: 5, seed, noise: 0.1 };
        prop_assert_eq!(
            SynthDigits::new(spec).generate(),
            SynthDigits::new(spec).generate()
        );
    }

    #[test]
    fn labels_balanced_when_divisible(seed in 0u64..10_000, groups in 1usize..5) {
        let n = groups * 10;
        let spec = DatasetSpec { train: n, test: 10, seed, noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        let dist = split.train.class_distribution();
        for d in dist {
            prop_assert!((d - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn subset_preserves_image_label_pairing(seed in 0u64..10_000, k in 1usize..10) {
        let spec = DatasetSpec { train: 20, test: 10, seed, noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        let mut rng = SeededRng::new(seed ^ 1);
        let sub = split.train.random_subset(k, &mut rng);
        prop_assert_eq!(sub.len(), k);
        // Every subset sample exists (with matching label) in the parent.
        for i in 0..k {
            let img = sub.sample(i);
            let found = (0..split.train.len()).any(|j| {
                split.train.sample(j) == img && split.train.labels[j] == sub.labels[i]
            });
            prop_assert!(found, "subset sample {i} not found in parent");
        }
    }

    #[test]
    fn class_indices_consistent(seed in 0u64..10_000, class in 0usize..10) {
        let spec = DatasetSpec { train: 30, test: 10, seed, noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        for idx in split.train.indices_of_class(class) {
            prop_assert_eq!(split.train.labels[idx], class);
        }
    }
}
