//! Tiled mapping of arbitrary weight matrices onto fixed-geometry
//! crossbar tiles.

use crate::{CellFault, Crossbar, CrossbarConfig, IrDropModel, ScrubOutcome};
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;

// Tile mapping is a pure function of matrix shape and tile geometry, so
// utilization counters are Stable. Utilization itself is derived at
// report time as cells_used / cells_allocated.
static TILES_MAPPED: tel::Counter = tel::Counter::new("reram.tile.mapped", tel::Stability::Stable);
static TILE_CELLS_USED: tel::Counter =
    tel::Counter::new("reram.tile.cells_used", tel::Stability::Stable);
static TILE_CELLS_ALLOCATED: tel::Counter =
    tel::Counter::new("reram.tile.cells_allocated", tel::Stability::Stable);
static TILE_UTILIZATION_MIN: tel::Gauge =
    tel::Gauge::new("reram.tile.utilization_min", tel::Stability::Stable);

/// A weight matrix `[m, n]` partitioned across a grid of crossbar tiles.
///
/// Row blocks map to word-line groups and column blocks to bit-line
/// groups; a matvec accumulates the partial bit-line sums of every tile in
/// a row block, exactly as ISAAC-class accelerators sum partial products
/// across arrays.
///
/// # Example
///
/// ```
/// use healthmon_reram::{CrossbarConfig, TiledMatrix};
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let w = Tensor::randn(&[300, 50], &mut rng); // larger than one 128x128 tile
/// let tiled = TiledMatrix::program(&w, &CrossbarConfig::ideal(), &mut rng);
/// assert_eq!(tiled.tile_grid(), (3, 1));
/// let x = Tensor::randn(&[300], &mut rng);
/// assert_eq!(tiled.matvec(&x).shape(), &[50]);
/// ```
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    /// Tiles in row-major grid order.
    tiles: Vec<Crossbar>,
}

impl TiledMatrix {
    /// Programs `weights` (`[m, n]`) across as many tiles as the config
    /// geometry requires.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D or the config is invalid.
    pub fn program(weights: &Tensor, config: &CrossbarConfig, rng: &mut SeededRng) -> Self {
        config.validate();
        assert_eq!(weights.ndim(), 2, "tiled mapping requires a 2-D matrix");
        let (m, n) = (weights.shape()[0], weights.shape()[1]);
        let grid_r = m.div_ceil(config.rows);
        let grid_c = n.div_ceil(config.cols);
        let mut tiles = Vec::with_capacity(grid_r * grid_c);
        for br in 0..grid_r {
            let r0 = br * config.rows;
            let r1 = (r0 + config.rows).min(m);
            for bc in 0..grid_c {
                let c0 = bc * config.cols;
                let c1 = (c0 + config.cols).min(n);
                let mut block = Tensor::zeros(&[r1 - r0, c1 - c0]);
                {
                    let src = weights.as_slice();
                    let dst = block.as_mut_slice();
                    let bw = c1 - c0;
                    for r in r0..r1 {
                        dst[(r - r0) * bw..(r - r0 + 1) * bw]
                            .copy_from_slice(&src[r * n + c0..r * n + c1]);
                    }
                }
                if tel::enabled() {
                    let used = ((r1 - r0) * (c1 - c0)) as u64;
                    let allocated = (config.rows * config.cols) as u64;
                    TILES_MAPPED.inc();
                    TILE_CELLS_USED.add(used);
                    TILE_CELLS_ALLOCATED.add(allocated);
                    TILE_UTILIZATION_MIN.set_min(used as f64 / allocated as f64);
                }
                tiles.push(Crossbar::program(&block, config, rng));
            }
        }
        TiledMatrix { rows: m, cols: n, tile_rows: grid_r, tile_cols: grid_c, tiles }
    }

    /// Logical matrix dimensions `[m, n]`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of tile blocks `(row_blocks, col_blocks)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        (self.tile_rows, self.tile_cols)
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Mutable access to every tile (for injecting device faults
    /// array-by-array).
    pub fn tiles_mut(&mut self) -> &mut [Crossbar] {
        &mut self.tiles
    }

    /// Shared access to every tile in row-major grid order.
    pub fn tiles(&self) -> &[Crossbar] {
        &self.tiles
    }

    /// The effective weight matrix the tiles actually store.
    pub fn effective_weights(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for br in 0..self.tile_rows {
            for bc in 0..self.tile_cols {
                let tile = &self.tiles[br * self.tile_cols + bc];
                let block = tile.effective_weights();
                let (bh, bw) = (block.shape()[0], block.shape()[1]);
                for r in 0..bh {
                    for c in 0..bw {
                        *out.at_mut(&[br * self.tile_rows_extent() + r, bc * self.tile_cols_extent() + c]) =
                            block.at(&[r, c]);
                    }
                }
            }
        }
        out
    }

    fn tile_rows_extent(&self) -> usize {
        self.tiles[0].rows()
    }

    fn tile_cols_extent(&self) -> usize {
        // First tile of the first row block has the full column extent
        // unless there is a single, narrower block.
        self.tiles[0].cols()
    }

    /// Crossbar-backed matrix-vector product `Wᵀ·x` over all tiles
    /// (`x` has `m` elements, result has `n`).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != m`.
    pub fn matvec(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.rows, "input length {} != {}", input.len(), self.rows);
        let batch = input
            .reshape(&[1, self.rows])
            .expect("1-D input reshapes to a single-row batch");
        self.matmul(&batch)
            .reshape(&[self.cols])
            .expect("single-row output reshapes to 1-D")
    }

    /// Crossbar-backed matrix product `X·W` for a batch `X` of shape
    /// `[batch, m]`, returning `[batch, n]`.
    ///
    /// One GEMM per tile against its cached differential conductance
    /// matrix — not `batch` matvec sweeps. Partial bit-line sums
    /// accumulate across row blocks in ascending grid order, the same
    /// per-element order a per-row sweep uses, and [`TiledMatrix::matvec`]
    /// is the `batch == 1` case of this method — so batched and per-row
    /// results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 2-D with `m` columns.
    pub fn matmul(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "batched matmul expects 2-D input");
        assert_eq!(input.shape()[1], self.rows, "inner dimension mismatch");
        let batch = input.shape()[0];
        // Integer fast path: when every tile shares one DAC grid and has
        // integer state, the whole input quantizes to DAC codes ONCE and
        // each row-block tile reads its code segment in place — no
        // per-(row, column)-block segment copies, no per-tile re-quantization.
        if let Some(out) = self.int_matmul(input, batch) {
            return out;
        }
        let x = input.as_slice();
        let row_extent = self.tiles[0].rows();
        let col_extent = self.tiles[0].cols();
        let mut out = Tensor::zeros(&[batch, self.cols]);
        let mut seg = Vec::new();
        for br in 0..self.tile_rows {
            let r0 = br * row_extent;
            for bc in 0..self.tile_cols {
                let tile = &self.tiles[br * self.tile_cols + bc];
                let c0 = bc * col_extent;
                // Word-line segment for this row block: input columns
                // [r0, r0 + tile.rows()) of every batch row.
                seg.clear();
                for b in 0..batch {
                    seg.extend_from_slice(&x[b * self.rows + r0..b * self.rows + r0 + tile.rows()]);
                }
                let seg_t = Tensor::from_vec(std::mem::take(&mut seg), &[batch, tile.rows()])
                    .expect("segment shape matches tile rows");
                let partial = tile.matmul(&seg_t);
                seg = seg_t.into_vec(); // reclaim the buffer for the next tile
                let p = partial.as_slice();
                let o = out.as_mut_slice();
                // The first row block ASSIGNS instead of accumulating into
                // the zero-initialized output: 0.0 + (−0.0) would flip a
                // negative-zero partial sum to +0.0 and break the
                // bit-identity of the single-tile case with the plain GEMM.
                if br == 0 {
                    for b in 0..batch {
                        for j in 0..tile.cols() {
                            o[b * self.cols + c0 + j] = p[b * tile.cols() + j];
                        }
                    }
                } else {
                    for b in 0..batch {
                        for j in 0..tile.cols() {
                            o[b * self.cols + c0 + j] += p[b * tile.cols() + j];
                        }
                    }
                }
            }
        }
        out
    }

    /// Integer fast path for [`TiledMatrix::matmul`]: quantizes the whole
    /// input to DAC codes once and hands every tile its code segment in
    /// place (`stride = m`, `offset = r0`), skipping the per-tile `f32`
    /// segment gather and re-quantization of the reference path. Returns
    /// `None` — caller falls back to the reference path — when any tile
    /// lacks integer state, the tiles' DAC grids diverge (a caller
    /// re-calibrated one via [`TiledMatrix::tiles_mut`]), or the input
    /// contains NaN. Accumulation across row blocks runs in the same
    /// ascending grid order as the reference path, and each tile's
    /// integer accumulation is order-fixed, so results are bit-identical
    /// at any thread count and `matvec` stays the `batch == 1` case.
    fn int_matmul(&self, input: &Tensor, batch: usize) -> Option<Tensor> {
        let grid = self.tiles[0].dac_grid()?;
        if !self.tiles.iter().all(|t| t.dac_grid() == Some(grid) && t.exec().int.is_some()) {
            return None;
        }
        let codes = grid.codes_for(input.as_slice())?;
        if tel::enabled() {
            self.tiles[0].record_dac(input.as_slice());
        }
        let row_extent = self.tiles[0].rows();
        let col_extent = self.tiles[0].cols();
        let mut out = Tensor::zeros(&[batch, self.cols]);
        for br in 0..self.tile_rows {
            let r0 = br * row_extent;
            for bc in 0..self.tile_cols {
                let tile = &self.tiles[br * self.tile_cols + bc];
                let c0 = bc * col_extent;
                let partial = tile
                    .int_matmul_codes(&codes, batch, self.rows, r0)
                    .expect("integer state verified for every tile");
                let p = partial.as_slice();
                let o = out.as_mut_slice();
                // Same first-row-block-assigns structure as the reference
                // path (preserves negative-zero partial sums).
                if br == 0 {
                    for b in 0..batch {
                        for j in 0..tile.cols() {
                            o[b * self.cols + c0 + j] = p[b * tile.cols() + j];
                        }
                    }
                } else {
                    for b in 0..batch {
                        for j in 0..tile.cols() {
                            o[b * self.cols + c0 + j] += p[b * tile.cols() + j];
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Injects stuck cells into every tile.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        for tile in &mut self.tiles {
            tile.inject_stuck_cells(fault, fraction, rng);
        }
    }

    /// Applies lognormal conductance disturbance to every tile.
    pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        for tile in &mut self.tiles {
            tile.disturb(sigma, rng);
        }
    }

    /// Flips cells with probability `probability` in every tile (one
    /// continuous RNG stream in row-major grid order; see
    /// [`Crossbar::flip_cells`]). Returns the total flipped cell count.
    pub fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        let mut flipped = 0usize;
        for tile in &mut self.tiles {
            flipped += tile.flip_cells(probability, rng);
        }
        flipped
    }

    /// Enables online parity tolerance on every tile.
    pub fn enable_parity(&mut self) {
        for tile in &mut self.tiles {
            tile.enable_parity();
        }
    }

    /// Re-baselines the parity checksums of every tile.
    pub fn refresh_parity(&mut self) {
        for tile in &mut self.tiles {
            tile.refresh_parity();
        }
    }

    /// Scrubs every tile against its parity checksums, merging outcomes.
    pub fn scrub_parity(&mut self) -> ScrubOutcome {
        let mut outcome = ScrubOutcome::default();
        for tile in &mut self.tiles {
            outcome.merge(tile.scrub_parity());
        }
        outcome
    }

    /// Applies conductance drift toward the high-resistance state to every
    /// tile (see [`Crossbar::drift`]).
    pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        for tile in &mut self.tiles {
            tile.drift(nu, time, rng);
        }
    }

    /// Applies the first-order IR-drop model to every tile.
    pub fn apply_ir_drop(&mut self, model: &IrDropModel) {
        for tile in &mut self.tiles {
            tile.apply_ir_drop(model);
        }
    }

    /// Freezes the differential pair at logical matrix position
    /// `(row, col)` to read as `weight` (see [`Crossbar::stick_cell`]).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are outside the logical matrix.
    pub fn stick_cell(&mut self, row: usize, col: usize, weight: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) outside {}x{} matrix",
            self.rows,
            self.cols
        );
        let row_extent = self.tile_rows_extent();
        let col_extent = self.tile_cols_extent();
        let (br, bc) = (row / row_extent, col / col_extent);
        let tile = &mut self.tiles[br * self.tile_cols + bc];
        tile.stick_cell(row % row_extent, col % col_extent, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_matches_crossbar() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let tiled = TiledMatrix::program(&w, &CrossbarConfig::ideal(), &mut rng);
        assert_eq!(tiled.tile_count(), 1);
        let x = Tensor::randn(&[10], &mut rng);
        let ideal = w.transpose().matvec(&x);
        let got = tiled.matvec(&x);
        for (a, b) in got.as_slice().iter().zip(ideal.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn multi_tile_partition_and_accumulate() {
        let mut rng = SeededRng::new(2);
        // 130x140 over 128x128 tiles -> 2x2 grid.
        let w = Tensor::randn(&[130, 140], &mut rng);
        let tiled = TiledMatrix::program(&w, &CrossbarConfig::ideal(), &mut rng);
        assert_eq!(tiled.tile_grid(), (2, 2));
        assert_eq!(tiled.tile_count(), 4);
        let x = Tensor::randn(&[130], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let ideal = w.transpose().matvec(&x);
        let got = tiled.matvec(&x);
        let rel = got.l1_distance(&ideal) / ideal.norm_l1().max(1e-6);
        assert!(rel < 1e-3, "tiled matvec relative error {rel}");
    }

    #[test]
    fn small_tiles_stress_partitioning() {
        let mut rng = SeededRng::new(3);
        let config = CrossbarConfig { rows: 4, cols: 3, ..CrossbarConfig::ideal() };
        let w = Tensor::randn(&[10, 8], &mut rng);
        let tiled = TiledMatrix::program(&w, &config, &mut rng);
        assert_eq!(tiled.tile_grid(), (3, 3));
        let x = Tensor::randn(&[10], &mut rng);
        let ideal = w.transpose().matvec(&x);
        let got = tiled.matvec(&x);
        for (a, b) in got.as_slice().iter().zip(ideal.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_matmul_matches_rows() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[6, 5], &mut rng);
        let tiled = TiledMatrix::program(&w, &CrossbarConfig::ideal(), &mut rng);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let batch = tiled.matmul(&x);
        for b in 0..3 {
            let single = tiled.matvec(&x.row(b));
            assert_eq!(batch.row(b), single);
        }
    }

    #[test]
    fn quantized_batched_matmul_matches_rows() {
        // The integer fast path must keep matvec as the batch == 1 case of
        // matmul, bit for bit, on a multi-tile default (quantized) config.
        let mut rng = SeededRng::new(40);
        let w = Tensor::randn(&[130, 140], &mut rng);
        let tiled = TiledMatrix::program(&w, &CrossbarConfig::default(), &mut rng);
        assert_eq!(tiled.tile_grid(), (2, 2));
        let x = Tensor::randn(&[3, 130], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let batch = tiled.matmul(&x);
        for b in 0..3 {
            assert_eq!(batch.row(b), tiled.matvec(&x.row(b)));
        }
    }

    #[test]
    fn quantized_fast_path_matches_per_tile_execution() {
        // Quantize-once must agree bit for bit with gathering each tile's
        // f32 segment and letting the tile quantize it itself — DAC codes
        // are a pure per-element function, so the two routes see identical
        // codes.
        let mut rng = SeededRng::new(41);
        let config = CrossbarConfig { rows: 32, cols: 24, ..CrossbarConfig::default() };
        let w = Tensor::randn(&[70, 50], &mut rng);
        let tiled = TiledMatrix::program(&w, &config, &mut rng);
        let x = Tensor::randn(&[4, 70], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let fast = tiled.matmul(&x);

        let batch = 4;
        let xs = x.as_slice();
        let mut reference = Tensor::zeros(&[batch, tiled.cols]);
        for br in 0..tiled.tile_rows {
            let r0 = br * config.rows;
            for bc in 0..tiled.tile_cols {
                let tile = &tiled.tiles[br * tiled.tile_cols + bc];
                let c0 = bc * config.cols;
                let mut seg = Vec::new();
                for b in 0..batch {
                    seg.extend_from_slice(&xs[b * tiled.rows + r0..b * tiled.rows + r0 + tile.rows()]);
                }
                let seg_t = Tensor::from_vec(seg, &[batch, tile.rows()]).unwrap();
                let partial = tile.matmul(&seg_t);
                let p = partial.as_slice();
                let o = reference.as_mut_slice();
                for b in 0..batch {
                    for j in 0..tile.cols() {
                        if br == 0 {
                            o[b * tiled.cols + c0 + j] = p[b * tile.cols() + j];
                        } else {
                            o[b * tiled.cols + c0 + j] += p[b * tile.cols() + j];
                        }
                    }
                }
            }
        }
        assert_eq!(fast, reference);
    }

    #[test]
    fn nan_input_poisons_quantized_output() {
        // NaN cannot be represented as a DAC code; the fast path must bail
        // to the f32 reference path, which propagates the poison.
        let mut rng = SeededRng::new(42);
        let w = Tensor::randn(&[10, 6], &mut rng);
        let tiled = TiledMatrix::program(&w, &CrossbarConfig::default(), &mut rng);
        let mut x = vec![0.5f32; 10];
        x[3] = f32::NAN;
        let out = tiled.matvec(&Tensor::from_vec(x, &[10]).unwrap());
        assert!(out.as_slice().iter().all(|v| v.is_nan()), "NaN must poison the output row");
    }

    #[test]
    fn effective_weights_round_trip() {
        let mut rng = SeededRng::new(5);
        let config = CrossbarConfig { rows: 4, cols: 4, ..CrossbarConfig::ideal() };
        let w = Tensor::randn(&[7, 9], &mut rng);
        let tiled = TiledMatrix::program(&w, &config, &mut rng);
        let back = tiled.effective_weights();
        assert_eq!(back.shape(), w.shape());
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_single_tile_matmul_is_bitwise_digital() {
        let mut rng = SeededRng::new(7);
        let w = Tensor::randn(&[30, 12], &mut rng);
        let config = CrossbarConfig { rows: 64, cols: 64, ..CrossbarConfig::exact() };
        let tiled = TiledMatrix::program(&w, &config, &mut rng);
        assert_eq!(tiled.tile_count(), 1);
        let x = Tensor::randn(&[5, 30], &mut rng);
        assert_eq!(tiled.matmul(&x), x.matmul(&w));
    }

    #[test]
    fn stick_cell_routes_to_the_right_tile() {
        let mut rng = SeededRng::new(8);
        let config = CrossbarConfig { rows: 4, cols: 3, ..CrossbarConfig::exact() };
        let w = Tensor::randn(&[10, 8], &mut rng);
        let mut tiled = TiledMatrix::program(&w, &config, &mut rng);
        // Positions spanning different tile blocks, including ragged edges.
        for &(r, c) in &[(0usize, 0usize), (5, 4), (9, 7), (3, 6)] {
            tiled.stick_cell(r, c, 0.125);
            let back = tiled.effective_weights();
            assert!(
                (back.at(&[r, c]) - 0.125).abs() < 1e-6,
                "stuck weight missing at ({r}, {c}): {}",
                back.at(&[r, c])
            );
        }
    }

    #[test]
    fn drift_and_ir_drop_reach_every_tile() {
        let mut rng = SeededRng::new(9);
        let config = CrossbarConfig { rows: 4, cols: 4, ..CrossbarConfig::ideal() };
        let w = Tensor::full(&[8, 8], 0.5);
        let mut drifted = TiledMatrix::program(&w, &config, &mut rng);
        let before = drifted.effective_weights().norm_l1();
        drifted.drift(0.5, 3.0, &mut rng);
        let back = drifted.effective_weights();
        assert!(back.norm_l1() < before, "drift did not shrink the tiled matrix");
        assert!(back.as_slice().iter().all(|&v| (0.0..=0.5 + 1e-5).contains(&v)));

        let mut dropped = TiledMatrix::program(&w, &config, &mut rng);
        dropped.apply_ir_drop(&IrDropModel::new(0.05));
        let back = dropped.effective_weights();
        // Every tile's far corner is attenuated below its origin cell.
        for br in 0..2 {
            for bc in 0..2 {
                let origin = back.at(&[br * 4, bc * 4]);
                let corner = back.at(&[br * 4 + 3, bc * 4 + 3]);
                assert!(corner < origin, "tile ({br},{bc}) not attenuated: {corner} vs {origin}");
            }
        }
    }

    #[test]
    fn stuck_cells_degrade_accuracy_of_product() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::randn(&[20, 10], &mut rng);
        let mut tiled = TiledMatrix::program(&w, &CrossbarConfig::ideal(), &mut rng);
        let x = Tensor::randn(&[20], &mut rng);
        let clean = tiled.matvec(&x);
        tiled.inject_stuck_cells(CellFault::StuckLow, 0.3, &mut rng);
        let faulty = tiled.matvec(&x);
        assert!(clean.l1_distance(&faulty) > 0.01);
    }
}
