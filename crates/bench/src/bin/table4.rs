//! **Table IV**: coefficient of variation (CV = σ/μ) of the confidence
//! distance for AET, C-TP and O-TP on LeNet-5, per programming-variation
//! σ. Smaller CV = more stable testing.
//!
//! The CV is computed on the all-class confidence distance (the measure
//! all three methods share); AET and C-TP CVs on the top-ranked distance
//! are reported as a second table for completeness.

use healthmon::report::TextTable;
use healthmon::stability::stability;
use healthmon::Detector;
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let benchmark = Benchmark::Lenet5Digits;
    let count = models_per_level();
    let mut trained = train_or_load(benchmark);
    let suite = pattern_suite(&mut trained);
    let sigmas = benchmark.sigma_grid();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV — CV of confidence distance on LeNet-5 ({count} fault models per sigma)\n"
    );
    for (title, pick_top) in [("all-class confidence distance", false), ("top-ranked confidence distance", true)] {
        let _ = writeln!(out, "-- CV of {title} --");
        let mut header = vec!["weight variance (sigma)".to_owned()];
        header.extend(sigmas.iter().map(|s| format!("{s:.2}")));
        let mut table = TextTable::new(header);
        for patterns in suite.methods() {
            if pick_top && patterns.method() == "O-TP" {
                continue;
            }
            let detector = Detector::new(&trained.model, patterns.clone());
            let mut row = vec![patterns.method().to_owned()];
            for &sigma in &sigmas {
                let distances = detector.campaign_distances(
                    &trained.model,
                    &FaultModel::ProgrammingVariation { sigma },
                    count,
                    CAMPAIGN_SEED,
                );
                let report = stability(&distances);
                let cv = if pick_top { report.top_ranked.cv } else { report.all_classes.cv };
                row.push(format!("{cv:.2}"));
            }
            table.push_row(row);
        }
        let _ = writeln!(out, "{}", table.render());
    }
    emit("table4", &out);
}
