//! Cross-backend equivalence and live-analog-state regression tests.
//!
//! The contract under test: an [`AnalogBackend`] configured with exact
//! cells (`cell_bits = 0`), ideal converters, zero write noise and no IR
//! drop computes **bit-identical** logits to the plain digital network —
//! on real paper-scale architectures, not just toy matrices. And the
//! other direction: faults injected into *live* crossbar state (stuck
//! cells, drift) must invalidate the cached differential conductances and
//! change what the concurrent-test detector observes.

use healthmon::{BackendSpec, CrossbarConfig, Detector, InferenceBackend, TestPatternSet};
use healthmon_nn::models::{convnet7, lenet5, tiny_mlp};
use healthmon_nn::zoo;
use healthmon_reram::{AnalogBackend, BitSlicedBackend, CellFault};
use healthmon_tensor::{SeededRng, Tensor};

/// Exact-mode analog spec large enough for every paper-scale layer
/// (crossbars allocate the actual matrix shape, not the tile geometry).
fn exact_spec() -> BackendSpec {
    BackendSpec::analog(CrossbarConfig { rows: 4096, cols: 4096, ..CrossbarConfig::exact() })
}

fn assert_bitwise_eq(digital: &Tensor, analog: &Tensor, what: &str) {
    assert_eq!(digital.shape(), analog.shape(), "{what}: shape mismatch");
    for (i, (d, a)) in digital.as_slice().iter().zip(analog.as_slice()).enumerate() {
        assert_eq!(
            d.to_bits(),
            a.to_bits(),
            "{what}: logit {i} diverges (digital {d} vs analog {a})"
        );
    }
}

#[test]
fn exact_analog_is_bit_identical_to_digital_on_lenet5() {
    let mut rng = SeededRng::new(11);
    let net = lenet5(&mut rng);
    let images = Tensor::rand_uniform(&[4, 1, 28, 28], 0.0, 1.0, &mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    assert_bitwise_eq(&net.infer(&images), &backend.infer(&images), "lenet5");
}

#[test]
fn exact_analog_is_bit_identical_to_digital_on_convnet7() {
    let mut rng = SeededRng::new(12);
    let net = convnet7(&mut rng);
    let images = Tensor::rand_uniform(&[3, 3, 32, 32], 0.0, 1.0, &mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    assert_bitwise_eq(&net.infer(&images), &backend.infer(&images), "convnet7");
}

#[test]
fn exact_analog_readback_matches_digital_weights() {
    let mut rng = SeededRng::new(13);
    let net = lenet5(&mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    let digital = net.state_dict();
    let readback = backend.readback().state_dict();
    for ((dk, dt), (rk, rt)) in digital.iter().zip(&readback) {
        assert_eq!(dk, rk);
        for (d, r) in dt.as_slice().iter().zip(rt.as_slice()) {
            // Exact mode programs -0.0 as +0.0; everything else is
            // bit-preserved.
            if *d == 0.0 && *r == 0.0 {
                continue;
            }
            assert_eq!(d.to_bits(), r.to_bits(), "`{dk}` diverges in read-back");
        }
    }
}

/// Regression for the PR 2 conductance cache: mutating *live* analog
/// state (stuck cells, drift) between detector evaluations must
/// invalidate the cached differential matrices, so the detector sees the
/// aged device — not a stale snapshot from before the fault.
#[test]
fn live_analog_faults_change_detection_responses() {
    let mut rng = SeededRng::new(21);
    let net = tiny_mlp(16, 32, 4, &mut rng);
    let patterns =
        TestPatternSet::new("t", Tensor::rand_uniform(&[8, 16], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);

    let spec = BackendSpec::analog(CrossbarConfig::exact());
    let mut backend = AnalogBackend::program(&net, &spec, &mut rng);

    // Freshly programmed exact-mode backend: indistinguishable from the
    // golden network. This evaluation also populates the conductance
    // cache — the point of the test is that the mutations below evict it.
    let d0 = detector.confidence_distance(&backend);
    assert_eq!(d0.all_classes, 0.0, "exact analog baseline must match golden");

    backend.inject_stuck_cells(CellFault::StuckLow, 0.10, &mut rng);
    let d1 = detector.confidence_distance(&backend);
    let r1 = detector.responses(&backend);
    assert!(
        d1.all_classes > 0.0,
        "stuck cells on live conductances must move the detector (got {d1:?})"
    );

    backend.drift(0.5, 1.0, &mut rng);
    let d2 = detector.confidence_distance(&backend);
    let r2 = detector.responses(&backend);
    assert_ne!(r1, r2, "drift after stuck cells must change the responses again");
    assert!(d2.all_classes > 0.0, "drifted device must stay distinguishable (got {d2:?})");
}

/// The same live-fault visibility holds end-to-end through the monitor's
/// verdict, not just the raw distances.
#[test]
fn live_analog_faults_flip_the_verdict() {
    use healthmon::SdcCriterion;
    let mut rng = SeededRng::new(22);
    let net = tiny_mlp(16, 32, 4, &mut rng);
    let patterns =
        TestPatternSet::new("t", Tensor::rand_uniform(&[8, 16], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);
    let spec = BackendSpec::analog(CrossbarConfig::exact());
    let mut backend = AnalogBackend::program(&net, &spec, &mut rng);
    let criterion = SdcCriterion::SdcA { threshold: 1e-4 };
    assert!(!detector.is_faulty(&backend, criterion), "fresh exact backend is healthy");
    backend.inject_stuck_cells(CellFault::StuckHigh, 0.25, &mut rng);
    assert!(detector.is_faulty(&backend, criterion), "injured backend must be flagged");
}

/// Probe batch in a zoo model's native input shape.
fn zoo_probes(spec: &zoo::ModelSpec, count: usize, rng: &mut SeededRng) -> Tensor {
    let mut shape = vec![count];
    shape.extend_from_slice(spec.input_shape);
    Tensor::rand_uniform(&shape, 0.0, 1.0, rng)
}

/// The exact-analog bit-identity contract is architecture-agnostic: every
/// registered zoo model — including the residual CNN, the deep MLP and
/// the attention block — must produce bitwise-digital logits on exact
/// crossbars. Adding a model to the registry adds it here automatically.
#[test]
fn exact_analog_is_bit_identical_to_digital_for_every_zoo_model() {
    for (i, spec) in zoo::ZOO.iter().enumerate() {
        let mut rng = SeededRng::new(31 + i as u64);
        let net = spec.build(&mut rng);
        let images = zoo_probes(spec, 3, &mut rng);
        let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        assert_bitwise_eq(&net.infer(&images), &backend.infer(&images), spec.name);
    }
}

/// Bit-sliced crossbars quantize each weight to a bounded-precision
/// magnitude before splitting it across cells, so bitwise equality with
/// the digital network is unattainable by construction. The contract is
/// instead: (a) programming is a pure function of (network, spec, seed) —
/// two same-seed programs are bitwise-identical to *each other* — and
/// (b) 16-bit sliced logits stay within a bounded relative envelope of
/// the digital reference, for every zoo architecture. The envelope is
/// loose (15%) because these are untrained random-init networks whose
/// logits nearly cancel, which inflates relative L1; it still catches
/// catastrophic divergence (wrong orientation, dropped slices, broken
/// recombination), which shows up as O(1) error.
#[test]
fn bitsliced_is_deterministic_and_bounded_for_every_zoo_model() {
    let spec16 = BackendSpec::bitsliced(
        CrossbarConfig { cell_bits: 4, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() },
        16,
    );
    for (i, spec) in zoo::ZOO.iter().enumerate() {
        let mut rng = SeededRng::new(41 + i as u64);
        let net = spec.build(&mut rng);
        let images = zoo_probes(spec, 3, &mut rng);

        let a = BitSlicedBackend::program(&net, &spec16, &mut rng.fork(1)).infer(&images);
        let b = BitSlicedBackend::program(&net, &spec16, &mut rng.fork(1)).infer(&images);
        assert_bitwise_eq(&a, &b, &format!("{} (same-seed bitsliced reprogram)", spec.name));

        let digital = net.infer(&images);
        let rel = a.l1_distance(&digital) / digital.norm_l1().max(1e-6);
        assert!(rel < 0.15, "{}: 16-bit sliced logits diverge too much: {rel}", spec.name);
    }
}

/// Live stuck cells must flip the monitor's verdict on every zoo model:
/// the conductance cache is invalidated per-architecture, not just on the
/// MLPs the original regression used.
#[test]
fn stuck_cells_flip_the_verdict_for_every_zoo_model() {
    use healthmon::SdcCriterion;
    for (i, spec) in zoo::ZOO.iter().enumerate() {
        let mut rng = SeededRng::new(51 + i as u64);
        let net = spec.build(&mut rng);
        let patterns = TestPatternSet::new("zoo", zoo_probes(spec, 4, &mut rng));
        let detector = Detector::new(&net, patterns);
        let mut backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        let criterion = SdcCriterion::SdcA { threshold: 1e-4 };
        assert!(
            !detector.is_faulty(&backend, criterion),
            "{}: fresh exact backend must be healthy",
            spec.name
        );
        backend.inject_stuck_cells(CellFault::StuckHigh, 0.25, &mut rng);
        assert!(
            detector.is_faulty(&backend, criterion),
            "{}: stuck cells must flip the verdict",
            spec.name
        );
    }
}
