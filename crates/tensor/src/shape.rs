use std::fmt;

/// A tensor shape: the extent of each dimension, row-major.
///
/// `Shape` is a thin, validated wrapper over a `Vec<usize>` providing the
/// index arithmetic shared by [`crate::Tensor`] and the layer
/// implementations built on it.
///
/// # Example
///
/// ```
/// use healthmon_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "shape extents must be non-zero, got {dims:?}");
        Shape(dims)
    }

    /// Total number of elements (product of extents).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Shapes are never empty, so this is always `false`; provided for
    /// API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides: the linear distance between consecutive elements
    /// along each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any component is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.0.len()).rev() {
            assert!(
                index[axis] < self.0[axis],
                "index {} out of bounds for axis {axis} with extent {}",
                index[axis],
                self.0[axis]
            );
            off += index[axis] * stride;
            stride *= self.0[axis];
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(vec![7]).len(), 7);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 0, 0]), 12);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(vec![2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn rejects_empty() {
        Shape::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_extent() {
        Shape::new(vec![2, 0]);
    }

    #[test]
    fn display_and_conversions() {
        let s: Shape = vec![2, 3].into();
        assert_eq!(s.to_string(), "[2, 3]");
        let s2: Shape = (&[2usize, 3][..]).into();
        assert_eq!(s, s2);
    }
}
