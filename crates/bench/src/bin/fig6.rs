//! **Fig 6**: detection rates under random soft errors on all six SDC
//! criteria, for AET, C-TP and O-TP on both benchmarks
//! (LeNet-5: p ∈ {0.5%, 1%}; ConvNet-7: p ∈ {0.1%, 0.3%}).

use healthmon::report::{percent, TextTable};
use healthmon::{Detector, SdcCriterion};
use healthmon_bench::harness::{
    campaign_accuracy, emit, models_per_level, pattern_suite, train_or_load, Benchmark,
    CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let criteria = SdcCriterion::paper_suite();
    let count = models_per_level();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 6 — detection rate under random soft errors ({count} fault models per point)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let _ = writeln!(out, "== {} ==", benchmark.label());
        for p in benchmark.soft_error_grid() {
            let fault = FaultModel::RandomSoftError { probability: p };
            let acc = campaign_accuracy(&trained, &fault, count.min(20), CAMPAIGN_SEED);
            let _ = writeln!(
                out,
                "-- p = {}% (mean fault-model accuracy {}) --",
                p * 100.0,
                percent(acc)
            );
            let mut header = vec!["method".to_owned()];
            header.extend(criteria.iter().map(|c| c.label()));
            let mut table = TextTable::new(header);
            for patterns in suite.methods() {
                let detector = Detector::new(&trained.model, patterns.clone());
                let mut row = vec![patterns.method().to_owned()];
                for crit in &criteria {
                    if patterns.method() == "O-TP" && crit.uses_top_class() {
                        row.push("-".to_owned());
                        continue;
                    }
                    let rate = detector.detection_rate(
                        &trained.model,
                        &fault,
                        count,
                        CAMPAIGN_SEED,
                        *crit,
                    );
                    row.push(percent(rate));
                }
                table.push_row(row);
            }
            let _ = writeln!(out, "{}", table.render());
        }
        let _ = writeln!(out);
    }
    emit("fig6", &out);
}
