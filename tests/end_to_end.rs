//! End-to-end integration: train → generate patterns → inject faults →
//! detect, across all three methods, on a small but genuinely trained
//! model.

use healthmon::{AetGenerator, CtpGenerator, Detector, OtpGenerator, SdcCriterion, TestPatternSet};
use healthmon_data::{DataSplit, Dataset, DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::SeededRng;

/// Trains a small MLP on flattened synthetic digits; shared by every test
/// in this file (built once via OnceLock to keep the suite fast).
fn trained_model() -> (Network, DataSplit) {
    use std::sync::OnceLock;
    static CACHE: OnceLock<(Network, DataSplit)> = OnceLock::new();
    let (net, split) = CACHE.get_or_init(|| {
        let spec = DatasetSpec { train: 800, test: 240, seed: 5, noise: 0.10 };
        let raw = SynthDigits::new(spec).generate();
        let n_pixels = 28 * 28;
        let flatten = |d: &Dataset| {
            Dataset::new(
                d.images.reshape(&[d.len(), n_pixels]).expect("flatten"),
                d.labels.clone(),
                d.num_classes,
            )
        };
        let split = DataSplit { train: flatten(&raw.train), test: flatten(&raw.test) };
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(n_pixels, 48, 10, &mut rng);
        let config = TrainConfig { epochs: 8, batch_size: 32, ..TrainConfig::default() };
        Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
            &split.train.images,
            &split.train.labels,
            None,
        );
        (net, split)
    });
    (net.clone(), split.clone())
}

#[test]
fn model_actually_learned() {
    let (mut net, split) = trained_model();
    let acc =
        healthmon_nn::trainer::accuracy(&mut net, &split.test.images, &split.test.labels, 64);
    assert!(acc > 0.88, "integration model accuracy only {acc}");
}

#[test]
fn all_three_methods_produce_requested_counts() {
    let (mut net, split) = trained_model();
    let mut rng = SeededRng::new(2);
    let ctp = CtpGenerator::new(20).select(&mut net, &split.test);
    assert_eq!(ctp.len(), 20);
    let aet = AetGenerator::new(20, 0.15).generate(&mut net, &split.test, &mut rng);
    assert_eq!(aet.len(), 20);
    let reference = FaultCampaign::new(&net, 9)
        .model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    let (otp, _) = OtpGenerator::new().max_iters(150).generate(&net, &reference, &mut rng);
    assert_eq!(otp.len(), 10);
}

#[test]
fn ctp_patterns_are_more_sensitive_than_random_images() {
    let (mut net, split) = trained_model();
    let mut rng = SeededRng::new(3);
    let ctp = CtpGenerator::new(15).select(&mut net, &split.test);
    let random = TestPatternSet::new(
        "random",
        split.test.random_subset(15, &mut rng).images.clone(),
    );
    let d_ctp = Detector::new(&net, ctp);
    let d_rand = Detector::new(&net, random);
    // Average confidence distance over a small campaign.
    let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
    let mean = |det: &Detector, net: &Network| {
        let ds = det.campaign_distances(net, &fault, 12, 77);
        ds.iter().map(|d| d.all_classes).sum::<f32>() / ds.len() as f32
    };
    let ctp_dist = mean(&d_ctp, &net);
    let rand_dist = mean(&d_rand, &net);
    assert!(
        ctp_dist > rand_dist,
        "C-TP ({ctp_dist}) should out-sense random images ({rand_dist})"
    );
}

#[test]
fn otp_detects_without_top_class_criteria() {
    let (net, _) = trained_model();
    let reference = FaultCampaign::new(&net, 9)
        .model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    let (otp, _) = OtpGenerator::new()
        .max_iters(300)
        .generate(&net, &reference, &mut SeededRng::new(4));
    let golden = net.clone();
    let detector = Detector::new(&golden, otp);
    let rate = detector.detection_rate(
        &net,
        &FaultModel::ProgrammingVariation { sigma: 0.4 },
        12,
        88,
        SdcCriterion::SdcA { threshold: 0.03 },
    );
    assert!(rate > 0.8, "O-TP missed heavy faults: rate {rate}");
}

#[test]
fn detection_rate_increases_with_error_severity() {
    let (mut net, split) = trained_model();
    let ctp = CtpGenerator::new(20).select(&mut net, &split.test);
    let detector = Detector::new(&net, ctp);
    let crit = SdcCriterion::SdcA { threshold: 0.03 };
    let rates: Vec<f32> = [0.05f32, 0.2, 0.5]
        .iter()
        .map(|&sigma| {
            detector.detection_rate(
                &net,
                &FaultModel::ProgrammingVariation { sigma },
                12,
                55,
                crit,
            )
        })
        .collect();
    assert!(rates[2] >= rates[0], "rates must not decrease with severity: {rates:?}");
    assert!(rates[2] > 0.8, "heavy faults must be detected: {rates:?}");
}

#[test]
fn soft_errors_are_detected_too() {
    let (mut net, split) = trained_model();
    let ctp = CtpGenerator::new(20).select(&mut net, &split.test);
    let detector = Detector::new(&net, ctp);
    let rate = detector.detection_rate(
        &net,
        &FaultModel::RandomSoftError { probability: 0.02 },
        12,
        66,
        SdcCriterion::SdcT { threshold: 0.05 },
    );
    assert!(rate > 0.5, "2% soft errors mostly missed: rate {rate}");
}

#[test]
fn golden_model_is_not_flagged_by_any_method() {
    let (mut net, split) = trained_model();
    let mut rng = SeededRng::new(6);
    let sets = vec![
        CtpGenerator::new(10).select(&mut net, &split.test),
        AetGenerator::new(10, 0.15).generate(&mut net, &split.test, &mut rng),
    ];
    for set in sets {
        let detector = Detector::new(&net, set);
        let same = net.clone();
        for crit in SdcCriterion::paper_suite() {
            assert!(
                !detector.is_faulty(&same, crit),
                "{} false positive on the golden model",
                crit.label()
            );
        }
    }
}

#[test]
fn fig8_shape_distance_tracks_accuracy_loss() {
    // The core claim of Fig 8: as sigma grows, accuracy falls and the
    // confidence distance rises.
    let (mut net, split) = trained_model();
    let ctp = CtpGenerator::new(15).select(&mut net, &split.test);
    let detector = Detector::new(&net, ctp);
    let mut prev_distance = -1.0f32;
    let mut distances = Vec::new();
    for sigma in [0.1f32, 0.3, 0.5] {
        let ds = detector.campaign_distances(
            &net,
            &FaultModel::ProgrammingVariation { sigma },
            10,
            44,
        );
        let mean = ds.iter().map(|d| d.all_classes).sum::<f32>() / ds.len() as f32;
        distances.push(mean);
        assert!(mean > prev_distance, "distance must grow with sigma: {distances:?}");
        prev_distance = mean;
    }
}
