//! A quiet-aware diagnostic logger for library crates.
//!
//! Library crates must never write to stdout: stdout belongs to command
//! output (reports, verdicts) that CI byte-compares. Diagnostics route
//! through [`log`] instead, which writes to **stderr** and respects a
//! process-global verbosity threshold. Unlike metrics and spans, the
//! logger is active even when telemetry recording is disabled — it
//! replaces pre-existing `eprintln!` diagnostics, whose visibility must
//! not depend on `--trace`.
//!
//! Messages are emitted verbatim (no level prefix) so routing an
//! existing `eprintln!` through the logger is byte-transparent on
//! stderr.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Diagnostic severity, ordered from most to least urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising conditions; always shown by default.
    Error = 0,
    /// Suspicious conditions (property failures, rejected inputs).
    Warn = 1,
    /// Progress reporting (training epochs, convergence notes).
    Info = 2,
    /// High-volume tracing detail; hidden by default.
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// Messages at levels numerically above this are suppressed.
static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global verbosity threshold.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity threshold.
pub fn verbosity() -> Level {
    Level::from_u8(VERBOSITY.load(Ordering::Relaxed))
}

/// Writes one diagnostic line to stderr if `level` passes the
/// threshold. Prefer the [`log_error!`](crate::log_error),
/// [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info), and
/// [`log_debug!`](crate::log_debug) macros.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if level <= verbosity() {
        eprintln!("{args}");
    }
}

/// Logs at [`Level::Error`] (format-args syntax).
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] (format-args syntax).
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] (format-args syntax).
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] (format-args syntax).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn verbosity_threshold_round_trips() {
        let prev = verbosity();
        set_verbosity(Level::Debug);
        assert_eq!(verbosity(), Level::Debug);
        set_verbosity(Level::Error);
        assert_eq!(verbosity(), Level::Error);
        set_verbosity(prev);
    }

    #[test]
    fn macros_compile_at_every_level() {
        // Visibility is a stderr side effect; this just exercises the
        // macro expansion paths.
        crate::log_error!("e {}", 1);
        crate::log_warn!("w {}", 2);
        crate::log_info!("i {}", 3);
        crate::log_debug!("d {}", 4);
    }
}
