//! **healthmon** — cost-effective concurrent test for ReRAM neural network
//! accelerators.
//!
//! This crate implements the core contribution of *"Monitoring the Health
//! of Emerging Neural Network Accelerators with Cost-effective Concurrent
//! Test"* (Liu et al., DAC 2020): generating a *small* set of test
//! patterns whose inference responses are *highly sensitive* to weight
//! errors, so that comparing a running accelerator's responses against
//! golden responses reveals its fault status without streaming thousands
//! of test images through the device.
//!
//! Three pattern generators are provided:
//!
//! * [`CtpGenerator`] — **C-TP**, "corner data" selection: rank a
//!   candidate pool by the standard deviation of output logits and keep
//!   the smallest (samples closest to *all* decision surfaces at once).
//! * [`OtpGenerator`] — **O-TP**, optimization-based generation
//!   (Algorithm 1): start from random noise and gradient-descend a joint
//!   loss that makes the clean model maximally confused (uniform soft
//!   label) while a reference fault model is maximally confident (hard
//!   label), one pattern per class.
//! * [`AetGenerator`] — **AET**, the state-of-the-art baseline the paper
//!   compares against: FGSM adversarial examples built from random test
//!   images (Li et al., ICCD 2019).
//!
//! Detection uses the SDC metric family ([`SdcCriterion`]) over
//! confidence distances ([`ConfidenceDistance`]), evaluated across
//! statistical fault campaigns by the [`Detector`]. [`stability`]
//! (coefficient of variation, Table IV) and [`efficiency`] (pattern-count
//! convergence, Fig 7) analyses complete the paper's evaluation toolkit.
//!
//! # Quickstart
//!
//! ```
//! use healthmon::{CtpGenerator, Detector, SdcCriterion};
//! use healthmon_data::{DatasetSpec, SynthDigits};
//! use healthmon_faults::FaultModel;
//! use healthmon_nn::models::tiny_mlp;
//! use healthmon_tensor::SeededRng;
//!
//! # fn main() {
//! let mut rng = SeededRng::new(0);
//! // A (untrained, for brevity) model and a candidate pool.
//! let mut model = tiny_mlp(784, 16, 10, &mut rng);
//! let pool = SynthDigits::new(DatasetSpec { train: 1, test: 40, seed: 1, ..Default::default() })
//!     .generate()
//!     .test;
//! // Flattened images for the MLP.
//! let patterns = CtpGenerator::new(10)
//!     .select_flattened(&mut model, &pool);
//! let detector = Detector::new(&model, patterns);
//! let rate = detector.detection_rate(
//!     &model,
//!     &FaultModel::ProgrammingVariation { sigma: 0.4 },
//!     8,     // fault models in the campaign
//!     42,    // campaign seed
//!     SdcCriterion::SdcA { threshold: 0.03 },
//! );
//! assert!((0.0..=1.0).contains(&rate));
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aet;
mod checkpoint;
mod confidence;
mod ctp;
mod detect;
mod diagnose;
pub mod efficiency;
mod error;
pub mod fleet;
pub mod flight;
mod metrics;
pub mod mitigation;
mod monitor;
mod otp;
mod patterns;
pub mod report;
mod runtime;
pub mod stability;
pub mod store;

pub use aet::AetGenerator;
pub use checkpoint::CampaignCheckpoint;
pub use confidence::{ConfidenceDistance, ResponseSet};
pub use ctp::CtpGenerator;
pub use detect::Detector;
pub use diagnose::{diagnose, estimate_stuck_cells, Diagnosis, LayerDiagnosis};
pub use error::HealthmonError;
pub use fleet::{ChaosConfig, FleetConfig, FleetIncident, FleetSupervisor, IncidentKind};
pub use flight::{FlightRecord, CHECKUP_PHASES, FLIGHT_FORMAT};
pub use metrics::SdcCriterion;
pub use mitigation::{
    run_mitigation, CampaignArm, LifetimeArm, MitigationReport, MitigationScenario,
};
pub use monitor::{Checkup, HealthMonitor, HealthState, MonitorPolicy, MonitorSnapshot};
pub use otp::{OtpGenerator, OtpOutcome};
pub use patterns::TestPatternSet;
pub use runtime::{
    AgingModel, IncidentReport, LifetimeConfig, LifetimeEvent, LifetimeRuntime, RepairAction,
    TrainData,
};

// Execution-backend layer: every detection, diagnosis, campaign and
// lifetime entry point is generic over [`InferenceBackend`], so the same
// test stack runs against a digital reference network or live analog
// crossbar state.
pub use healthmon_nn::InferenceBackend;
pub use healthmon_reram::{
    ActiveBackend, AnalogBackend, BackendKind, BackendSpec, BitSlicedBackend, CrossbarConfig,
    DeployReport, LayerMapping,
};
