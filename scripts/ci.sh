#!/usr/bin/env bash
# Hermetic CI: the whole pipeline must pass offline, proving the
# workspace builds from the standard library alone (no registry, no
# network, no vendored sources).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline release build =="
cargo build --release --offline --workspace

echo "== offline tests =="
cargo test -q --offline --workspace

echo "== offline clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== lockfile is workspace-only =="
if grep -E '^source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock references an external registry source" >&2
    exit 1
fi
echo "ok: every locked package is a workspace member"

echo "CI passed."
