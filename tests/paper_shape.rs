//! Small-scale assertions of the paper's headline qualitative results
//! ("shape" tests): who wins, in which regime. Full-scale numbers come
//! from the `healthmon-bench` experiment binaries; these tests pin the
//! orderings at a size that runs in CI.

use healthmon::stability::stability;
use healthmon::{AetGenerator, CtpGenerator, Detector, OtpGenerator, SdcCriterion, TestPatternSet};
use healthmon_data::{Dataset, DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::SeededRng;
use std::sync::OnceLock;

struct Fixture {
    net: Network,
    aet: TestPatternSet,
    ctp: TestPatternSet,
    otp: TestPatternSet,
}

fn fixture() -> &'static Fixture {
    static CACHE: OnceLock<Fixture> = OnceLock::new();
    CACHE.get_or_init(|| {
        let spec = DatasetSpec { train: 1000, test: 300, seed: 5, noise: 0.10 };
        let raw = SynthDigits::new(spec).generate();
        let n_pixels = 28 * 28;
        let flat = |d: &Dataset| {
            Dataset::new(
                d.images.reshape(&[d.len(), n_pixels]).expect("flatten"),
                d.labels.clone(),
                10,
            )
        };
        let (train, test) = (flat(&raw.train), flat(&raw.test));
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(n_pixels, 64, 10, &mut rng);
        let config = TrainConfig { epochs: 5, batch_size: 32, ..TrainConfig::default() };
        Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
            &train.images,
            &train.labels,
            None,
        );

        let aet = AetGenerator::new(20, 0.15).generate(&mut net, &test, &mut SeededRng::new(2));
        // C-TP needs a deep candidate pool for genuine corner data (the
        // paper searches the full 10K inference set); a 300-image test
        // split leaves too thin a boundary tail.
        let pool_raw = SynthDigits::new(DatasetSpec { train: 1, test: 2500, seed: 99, noise: 0.10 })
            .generate()
            .test;
        let pool = flat(&pool_raw);
        let ctp = CtpGenerator::new(20).select(&mut net, &pool);
        let reference = FaultCampaign::new(&net, 777)
            .model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
        let (otp, _) = OtpGenerator::new()
            .per_class(2)
            .max_iters(400)
            .generate(&net, &reference, &mut SeededRng::new(3));
        Fixture { net, aet, ctp, otp }
    })
}

fn mean_all_distance(set: &TestPatternSet, sigma: f32, count: usize) -> f32 {
    let f = fixture();
    let golden = f.net.clone();
    let detector = Detector::new(&golden, set.clone());
    let ds = detector.campaign_distances(
        &f.net,
        &FaultModel::ProgrammingVariation { sigma },
        count,
        2020,
    );
    ds.iter().map(|d| d.all_classes).sum::<f32>() / ds.len() as f32
}

/// Fig 3's ordering: the proposed methods produce a larger confidence
/// distance than the AET baseline at the same error level.
#[test]
fn proposed_methods_beat_aet_on_confidence_distance() {
    let f = fixture();
    let sigma = 0.25;
    let aet = mean_all_distance(&f.aet, sigma, 16);
    let ctp = mean_all_distance(&f.ctp, sigma, 16);
    let otp = mean_all_distance(&f.otp, sigma, 16);
    assert!(ctp > aet, "C-TP ({ctp}) must out-distance AET ({aet})");
    assert!(otp > aet, "O-TP ({otp}) must out-distance AET ({aet})");
}

/// Table III's ordering on the SDC-A criteria at a small error level,
/// where AET collapses in the paper.
#[test]
fn ctp_detection_dominates_aet_at_small_sigma() {
    let f = fixture();
    let crit = SdcCriterion::SdcA { threshold: 0.03 };
    let rate = |set: &TestPatternSet| {
        let golden = f.net.clone();
        Detector::new(&golden, set.clone()).detection_rate(
            &f.net,
            &FaultModel::ProgrammingVariation { sigma: 0.15 },
            16,
            2020,
            crit,
        )
    };
    let aet = rate(&f.aet);
    let ctp = rate(&f.ctp);
    assert!(
        ctp >= aet,
        "C-TP ({ctp}) must detect at least as often as AET ({aet}) at small sigma"
    );
}

/// Table IV's shape: the proposed methods are more stable (smaller CV of
/// confidence distance) than AET.
#[test]
fn proposed_methods_are_more_stable_than_aet() {
    let f = fixture();
    let cv = |set: &TestPatternSet| {
        let golden = f.net.clone();
        let detector = Detector::new(&golden, set.clone());
        let ds = detector.campaign_distances(
            &f.net,
            &FaultModel::ProgrammingVariation { sigma: 0.25 },
            20,
            2020,
        );
        stability(&ds).all_classes.cv
    };
    let aet = cv(&f.aet);
    let ctp = cv(&f.ctp);
    assert!(
        ctp < aet * 1.2,
        "C-TP CV ({ctp}) should not be substantially worse than AET's ({aet})"
    );
}

/// SDC-5 saturates for every method (paper: "top-5 is easily changed when
/// weight variance occurs").
#[test]
fn sdc5_saturates_at_moderate_sigma() {
    let f = fixture();
    for set in [&f.aet, &f.ctp] {
        let golden = f.net.clone();
        let rate = Detector::new(&golden, (*set).clone()).detection_rate(
            &f.net,
            &FaultModel::ProgrammingVariation { sigma: 0.4 },
            12,
            2020,
            SdcCriterion::Sdc5,
        );
        assert!(rate > 0.9, "{} SDC-5 rate only {rate}", set.method());
    }
}

/// Fig 7's shape: O-TP with its native 10 patterns is at least as stable
/// an estimator as AET with the same budget.
#[test]
fn otp_estimate_stable_with_few_patterns() {
    let f = fixture();
    let std_with = |set: &TestPatternSet, k: usize| {
        let golden = f.net.clone();
        let detector = Detector::new(&golden, set.clone()).truncated(k);
        let ds = detector.campaign_distances(
            &f.net,
            &FaultModel::ProgrammingVariation { sigma: 0.25 },
            16,
            2020,
        );
        stability(&ds).all_classes.std / stability(&ds).all_classes.mean.max(1e-9)
    };
    let otp10 = std_with(&f.otp, 10);
    let aet10 = std_with(&f.aet, 10);
    assert!(
        otp10 < aet10 * 1.5,
        "O-TP@10 relative spread ({otp10}) should be comparable or better than AET@10 ({aet10})"
    );
}
