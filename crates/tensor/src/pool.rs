//! Persistent scoped worker pool shared by every parallel kernel in the
//! workspace.
//!
//! The seed implementation spawned fresh `std::thread::scope` threads for
//! every parallel matmul and every fault campaign — tens of thousands of
//! spawns per detection sweep. This module replaces those with a single
//! process-wide pool of long-lived workers plus a *scoped* job protocol:
//! [`run`] fans `f(0..n_chunks)` out over the workers **and the calling
//! thread**, and does not return until every chunk has completed, so `f`
//! may freely borrow from the caller's stack exactly like
//! `std::thread::scope`.
//!
//! # Determinism contract
//!
//! Chunks are pure data-parallel units: which OS thread executes chunk
//! `i` is unspecified, so `f(i)` must depend only on `i` (plus captured
//! immutable state). Under that contract results are bit-identical
//! regardless of worker count, `HEALTHMON_THREADS`, or scheduling — the
//! property the campaign and kernel tests assert.
//!
//! # Nesting and panics
//!
//! Jobs may be submitted from worker threads (a campaign chunk calling a
//! parallel matmul): the inner caller always participates in its own job,
//! so progress never depends on free workers and the pool cannot
//! deadlock. A panicking chunk is caught, the remaining chunks still
//! complete, and the first panic payload (by completion order) is
//! re-raised on the calling thread once the job is done — workers never
//! die, and borrowed data is never used after the caller unwinds.
//!
//! # Stall story (deliberately timeout-free)
//!
//! The pool itself never kills a job: a chunk closure that spins forever
//! holds its worker forever. Adding timeouts *here* would break the
//! scoped-borrow safety argument (a chunk abandoned mid-execution could
//! touch caller stack memory after `run` returns), so stall handling is
//! layered instead:
//!
//! 1. **Visibility** — the `pool.jobs.inflight` gauge tracks jobs
//!    currently inside [`run`] (high-water via `set_max`), and the
//!    `pool.job_ns` histogram records each job's wall-clock duration
//!    from submission to completion. A hung device checkup shows up in
//!    `healthmon metrics` as a stuck non-zero inflight gauge and a
//!    missing final `pool.job_ns` sample long before anything is killed.
//! 2. **Enforcement** — deadline/timeout semantics live in the caller
//!    that owns the work's meaning: the fleet supervisor abandons a
//!    checkup attempt whose (virtual) stall exceeds its per-device
//!    deadline *before* the device transaction lands, then retries or
//!    quarantines. The pool stays simple and safe; policy stays where
//!    the domain knowledge is.

use healthmon_telemetry as tel;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// Pool telemetry is all scheduling-dependent (which thread claims which
// chunk, how long the caller waits), so every metric here is Volatile:
// excluded from thread-count-invariance comparisons by construction.
static POOL_JOBS: tel::Counter = tel::Counter::new("pool.jobs", tel::Stability::Volatile);
static POOL_JOBS_INLINE: tel::Counter =
    tel::Counter::new("pool.jobs.inline", tel::Stability::Volatile);
static POOL_CHUNKS_CALLER: tel::Counter =
    tel::Counter::new("pool.chunks.caller", tel::Stability::Volatile);
static POOL_CHUNKS_WORKER: tel::Counter =
    tel::Counter::new("pool.chunks.worker", tel::Stability::Volatile);
static POOL_WAIT_NS: tel::Histogram =
    tel::Histogram::new("pool.wait_ns", tel::Stability::Volatile);
// Watchdog pair (see the module-level stall story): jobs currently
// inside `run`, and each job's submit-to-complete wall time. Gauges have
// no increment operation, so the live count rides in an atomic and the
// gauge snapshots it on every transition.
static POOL_INFLIGHT: tel::Gauge =
    tel::Gauge::new("pool.jobs.inflight", tel::Stability::Volatile);
static POOL_JOB_NS: tel::Histogram =
    tel::Histogram::new("pool.job_ns", tel::Stability::Volatile);
static INFLIGHT: AtomicUsize = AtomicUsize::new(0);

/// RAII guard for the inflight watchdog: counts a job in on creation and
/// out on drop (including the unwind path, so a re-raised chunk panic
/// cannot leak an inflight count).
struct InflightGuard {
    t0: Option<std::time::Instant>,
}

impl InflightGuard {
    fn enter() -> Self {
        let now = INFLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        POOL_INFLIGHT.set(now as f64);
        InflightGuard { t0: tel::enabled().then(std::time::Instant::now) }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = INFLIGHT.fetch_sub(1, Ordering::Relaxed) - 1;
        POOL_INFLIGHT.set(now as f64);
        if let Some(t0) = self.t0 {
            POOL_JOB_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// The process-wide thread budget for parallel kernels.
///
/// Resolved once per process: the `HEALTHMON_THREADS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]. Every parallel entry point in
/// the workspace (matmul kernels, fault campaigns) derives its default
/// fan-out from this single cached lookup.
pub fn max_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(raw) = std::env::var("HEALTHMON_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// One in-flight job: a type-erased chunk closure plus claim/completion
/// counters.
struct Job {
    /// The chunk closure. The `'static` lifetime is a lie told by
    /// [`run`], which guarantees the borrow outlives every execution by
    /// blocking until `done == n_chunks`.
    task: &'static (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Total chunk count.
    n_chunks: usize,
    /// Completed chunk count, guarded for the completion condvar.
    done: Mutex<usize>,
    /// Signalled when `done` reaches `n_chunks`.
    done_cv: Condvar,
    /// First panic payload raised by a chunk, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Pool state shared between the workers and submitting threads.
struct Shared {
    /// Jobs with potentially unclaimed chunks, oldest first.
    queue: Mutex<Vec<Arc<Job>>>,
    /// Signalled when a new job is pushed.
    work_cv: Condvar,
}

/// Claims and executes chunks of `job` until none remain unclaimed.
/// `chunk_counter` tallies chunk placement (caller vs worker threads) so
/// chunk imbalance is visible in telemetry.
fn execute(job: &Job, chunk_counter: &'static tel::Counter) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            return;
        }
        chunk_counter.inc();
        let outcome = catch_unwind(AssertUnwindSafe(|| (job.task)(i)));
        if let Err(payload) = outcome {
            let mut slot = job.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = job.done.lock().unwrap();
        *done += 1;
        if *done == job.n_chunks {
            job.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue
                    .iter()
                    .find(|j| j.next.load(Ordering::Relaxed) < j.n_chunks)
                {
                    break job.clone();
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        execute(&job, &POOL_CHUNKS_WORKER);
    }
}

/// The lazily-started global pool. Workers are `max_threads() - 1`
/// detached threads; the submitting thread always acts as the final
/// worker for its own job.
fn shared() -> &'static Arc<Shared> {
    static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared = Arc::new(Shared { queue: Mutex::new(Vec::new()), work_cv: Condvar::new() });
        for w in 0..max_threads().saturating_sub(1) {
            let worker_shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("healthmon-pool-{w}"))
                .spawn(move || worker_loop(worker_shared))
                .expect("spawning a healthmon pool worker failed");
        }
        shared
    })
}

/// Runs `f(0)`, `f(1)`, …, `f(n_chunks - 1)` across the persistent pool
/// and the calling thread, returning once all chunks have completed.
///
/// `f` may borrow from the caller's stack: like `std::thread::scope`,
/// this function does not return (or unwind) while any chunk is still
/// executing. Chunk-to-thread assignment is unspecified; see the module
/// docs for the determinism contract.
///
/// # Panics
///
/// Re-raises the first panic observed among the chunks after every chunk
/// has finished.
pub fn run(n_chunks: usize, f: impl Fn(usize) + Sync) {
    if n_chunks == 0 {
        return;
    }
    let _watchdog = InflightGuard::enter();
    if n_chunks == 1 || max_threads() == 1 {
        // Inline path: same contract as the pooled path — every chunk
        // runs, and the first panic is re-raised only afterwards.
        POOL_JOBS_INLINE.inc();
        POOL_CHUNKS_CALLER.add(n_chunks as u64);
        let mut first_panic = None;
        for i in 0..n_chunks {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        return;
    }
    let task: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: `task` is only invoked by `execute`, every invocation
    // finishes before `done` reaches `n_chunks`, and this function does
    // not return or unwind until the completion wait below observes
    // `done == n_chunks` — so the erased borrow never outlives `f`.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
    };
    let job = Arc::new(Job {
        task,
        next: AtomicUsize::new(0),
        n_chunks,
        done: Mutex::new(0),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    POOL_JOBS.inc();
    let shared = shared();
    shared.queue.lock().unwrap().push(job.clone());
    shared.work_cv.notify_all();
    // Participate: the caller is always one of the executors, so a job
    // completes even if every worker is busy with other jobs (including
    // nested jobs submitted from inside this one).
    execute(&job, &POOL_CHUNKS_CALLER);
    // Queue wait: how long the caller blocks on stragglers after running
    // out of chunks to claim itself.
    let wait_t0 = if tel::enabled() { Some(std::time::Instant::now()) } else { None };
    let mut done = job.done.lock().unwrap();
    while *done < n_chunks {
        done = job.done_cv.wait(done).unwrap();
    }
    drop(done);
    if let Some(t0) = wait_t0 {
        POOL_WAIT_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let mut queue = shared.queue.lock().unwrap();
    if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
        queue.remove(pos);
    }
    drop(queue);
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Raw-pointer wrapper that promises cross-thread use is sound because
/// [`run_chunks`] hands each chunk a disjoint region.
struct SharedMutPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SharedMutPtr<T> {}

impl<T> SharedMutPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper instead of disjointly capturing the raw pointer.
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Splits `items` into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and runs `f(chunk_index, chunk)` for each in
/// parallel on the pool.
///
/// This is the safe mutable-output entry point the matmul kernels and
/// fault campaigns build on: the chunks are disjoint `&mut` regions of
/// one allocation, so no locking is needed and results are independent
/// of how chunks are scheduled.
///
/// # Panics
///
/// Panics if `chunk_len` is zero; re-raises chunk panics like [`run`].
pub fn run_chunks<T, F>(items: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = items.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk_len);
    let base = SharedMutPtr(items.as_mut_ptr());
    run(n_chunks, move |ci| {
        let start = ci * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunk `ci` covers [start, end) and chunks are disjoint
        // sub-ranges of `items`, which outlives `run` (it blocks until
        // all chunks complete).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
        f(ci, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_chunk_once() {
        let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        run(23, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} executed wrong number of times");
        }
    }

    #[test]
    fn run_zero_chunks_is_noop() {
        run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn run_chunks_partitions_exactly() {
        let mut items = vec![0u32; 10];
        run_chunks(&mut items, 4, |ci, chunk| {
            let expected = if ci == 2 { 2 } else { 4 };
            assert_eq!(chunk.len(), expected);
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        assert_eq!(items, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn nested_runs_complete() {
        let mut out = vec![0usize; 6];
        run_chunks(&mut out, 2, |outer, chunk| {
            let inner_sum = AtomicUsize::new(0);
            run(3, |i| {
                inner_sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            for v in chunk.iter_mut() {
                *v = outer * 100 + inner_sum.load(Ordering::Relaxed);
            }
        });
        assert_eq!(out, vec![6, 6, 106, 106, 206, 206]);
    }

    #[test]
    fn panicking_chunk_is_reraised_after_completion() {
        let completed: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(5, |i| {
                completed[i].fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    panic!("chunk 2 exploded");
                }
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "chunk 2 exploded");
        // Every chunk still ran exactly once despite the panic.
        for c in &completed {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn inflight_watchdog_drains_even_across_panics() {
        // A leak here would make the watchdog gauge cry wolf. Other
        // tests share the pool concurrently, so assert on drainage back
        // to the starting level rather than on an absolute zero.
        let before = INFLIGHT.load(Ordering::Relaxed);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            run(3, |i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        run(4, |_| {});
        let t0 = std::time::Instant::now();
        while INFLIGHT.load(Ordering::Relaxed) > before && t0.elapsed().as_secs() < 10 {
            std::thread::yield_now();
        }
        assert!(
            INFLIGHT.load(Ordering::Relaxed) <= before,
            "inflight watchdog leaked a job"
        );
    }

    #[test]
    fn max_threads_is_stable_and_positive() {
        let a = max_threads();
        let b = max_threads();
        assert!(a >= 1);
        assert_eq!(a, b, "cached thread budget must not change between calls");
    }
}
