//! Element-wise activation layers.

use super::{Layer, MatmulEngine};
use healthmon_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// The default activation for every model factory in this crate.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("relu backward before forward");
        input.zip_map(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent activation, as in the original LeNet-5.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        input.map(f32::tanh)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("tanh backward before forward");
        y.zip_map(grad_out, |y, g| g * (1.0 - y * y))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        input.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("sigmoid backward before forward");
        y.zip_map(grad_out, |y, g| g * y * (1.0 - y))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use healthmon_tensor::SeededRng;

    #[test]
    fn relu_forward() {
        let mut l = Relu::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut l = Relu::new();
        l.forward(&Tensor::from_slice(&[-1.0, 0.5, 2.0]));
        let g = l.backward(&Tensor::from_slice(&[10.0, 10.0, 10.0]));
        assert_eq!(g.as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn tanh_matches_std() {
        let mut l = Tanh::new();
        let y = l.forward(&Tensor::from_slice(&[0.5]));
        assert!((y.as_slice()[0] - 0.5f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Tensor::from_slice(&[-10.0, 0.0, 10.0]));
        assert!(y.as_slice()[0] < 0.001);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.999);
    }

    #[test]
    fn gradient_checks() {
        let mut rng = SeededRng::new(5);
        // Keep inputs away from ReLU's kink where finite differences lie.
        let x = Tensor::randn(&[4, 6], &mut rng).map(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
        for layer in [
            Box::new(Relu::new()) as Box<dyn Layer>,
            Box::new(Tanh::new()),
            Box::new(Sigmoid::new()),
        ] {
            let mut layer = layer;
            let err = gradcheck::input_gradient_error(layer.as_mut(), &x);
            assert!(err < 2e-2, "{} gradient error {err}", layer.name());
        }
    }

    #[test]
    fn activations_have_no_params() {
        let l = Relu::new();
        assert!(l.params().is_empty());
        assert!(l.param_names().is_empty());
    }
}
