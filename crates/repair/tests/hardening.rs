//! Drop-connect hardening property: under the synthetic stuck-at defect
//! maps the repair hierarchy works with ([`DefectMap::sample_for_matrix`]),
//! a drop-connect-trained LeNet-5 degrades gracefully at defect rates
//! where the plainly trained model collapses.
//!
//! The model pair is trained once (deterministically) and shared across
//! cases; each property case then samples a defect rate and a map seed,
//! applies *identical* defect positions to the crossbar-mapped fully-
//! connected matrices of both models, and compares the accuracy drops.
//! Run on the `healthmon-check` harness; a failure at case `N`
//! reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon_check::{run_cases, Gen};
use healthmon_data::{DataSplit, DatasetSpec, SynthDigits};
use healthmon_nn::models::lenet5;
use healthmon_nn::optim::Sgd;
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{DropConnect, Network, TrainConfig, Trainer};
use healthmon_repair::DefectMap;
use healthmon_tensor::SeededRng;
use std::sync::OnceLock;

const CASES: usize = 12;
/// Defect rates the property sweeps — high enough that the plain model
/// visibly degrades, low enough that graceful degradation is possible.
const RATE_LO: f64 = 0.02;
const RATE_HI: f64 = 0.08;
/// The hardened model may lose at most this much absolute accuracy per
/// case (the "bounded loss" side of the property).
const HARDENED_LOSS_BOUND: f32 = 0.30;

struct Fixture {
    plain: Network,
    hardened: Network,
    split: DataSplit,
    plain_clean: f32,
    hardened_clean: f32,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let split = SynthDigits::new(DatasetSpec {
            train: 512,
            test: 160,
            seed: 11,
            ..Default::default()
        })
        .generate();
        let train = |dc: Option<DropConnect>| {
            let mut rng = SeededRng::new(6);
            let mut net = lenet5(&mut rng);
            let config = TrainConfig {
                epochs: 4,
                batch_size: 32,
                verbose: false,
                drop_connect: dc,
                ..TrainConfig::default()
            };
            Trainer::new(&mut net, Sgd::new(0.05).momentum(0.9), config)
                .fit(&split.train.images, &split.train.labels, None);
            net
        };
        let mut plain = train(None);
        let mut hardened = train(Some(DropConnect::new(0.1).seeded(21)));
        let plain_clean =
            accuracy(&mut plain, &split.test.images, &split.test.labels, 32);
        let hardened_clean =
            accuracy(&mut hardened, &split.test.images, &split.test.labels, 32);
        Fixture { plain, hardened, split, plain_clean, hardened_clean }
    })
}

/// Applies stuck-at defect maps (same positions for every call with the
/// same seed) to each crossbar-mapped 2-D weight matrix and returns the
/// damaged model's test accuracy.
fn damaged_accuracy(fx: &Fixture, net: &Network, rate: f64, seed: u64) -> f32 {
    let mut damaged = net.clone();
    let mut layer = 0u64;
    damaged.for_each_param_mut(|key, tensor| {
        if !key.ends_with("weight") || tensor.ndim() != 2 {
            return;
        }
        let mut rng = SeededRng::new(seed).fork(layer);
        layer += 1;
        let map = DefectMap::sample_for_matrix(tensor, rate, &mut rng);
        *tensor = map.apply(tensor);
    });
    accuracy(&mut damaged, &fx.split.test.images, &fx.split.test.labels, 32)
}

#[test]
fn trained_pair_is_comparable() {
    let fx = fixture();
    assert!(fx.plain_clean > 0.5, "plain LeNet-5 undertrained: {}", fx.plain_clean);
    assert!(
        fx.hardened_clean > 0.5,
        "hardened LeNet-5 undertrained: {}",
        fx.hardened_clean
    );
}

#[test]
fn hardened_lenet5_degrades_gracefully_under_stuck_at() {
    let fx = fixture();
    let mut plain_failures = 0usize;
    let mut plain_total_drop = 0.0f32;
    let mut hardened_total_drop = 0.0f32;
    run_cases(CASES, |g: &mut Gen| {
        let rate = g.f64_in(RATE_LO, RATE_HI);
        let seed = g.seed();
        let plain_acc = damaged_accuracy(fx, &fx.plain, rate, seed);
        let hardened_acc = damaged_accuracy(fx, &fx.hardened, rate, seed);
        let plain_drop = fx.plain_clean - plain_acc;
        let hardened_drop = fx.hardened_clean - hardened_acc;
        plain_total_drop += plain_drop;
        hardened_total_drop += hardened_drop;
        if plain_drop > HARDENED_LOSS_BOUND {
            plain_failures += 1;
            // The property: wherever the plain model loses more than the
            // bound, the hardened model stays within it.
            assert!(
                hardened_drop <= HARDENED_LOSS_BOUND,
                "case {}: rate {rate:.3}: hardened dropped {hardened_drop:.3} \
                 (clean {:.3} -> {hardened_acc:.3}), plain dropped {plain_drop:.3}",
                g.case(),
                fx.hardened_clean,
            );
        }
    });
    // The sweep must actually exercise the failure regime, and hardening
    // must help on aggregate, not just on the failure cases.
    assert!(
        plain_failures > 0,
        "no case pushed the plain model past the bound; sweep too gentle"
    );
    assert!(
        hardened_total_drop < plain_total_drop,
        "hardening did not reduce aggregate stuck-at damage: hardened {:.3} vs plain {:.3}",
        hardened_total_drop,
        plain_total_drop
    );
}
