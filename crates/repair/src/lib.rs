//! Repair mechanisms for faulty ReRAM neural-network accelerators.
//!
//! The paper's introduction motivates concurrent test with a *repair
//! hierarchy*: once the fault status of a running accelerator is known,
//! an appropriately-priced fix can be applied —
//!
//! * **fault-aware remapping** ([`remap_rows`]) — reorder how logical
//!   weight-matrix rows are assigned to physical crossbar word lines so
//!   that stuck cells coincide with small-magnitude weights. Zero
//!   hardware cost, fixes mild damage.
//! * **spare-column redundancy** ([`repair_with_spares`]) — swap the most
//!   damaged bit lines onto spare defect-free columns, as provisioned by
//!   redundancy-equipped arrays. Small hardware cost.
//! * **fault-aware retraining** ([`retrain_with_faults`]) — fine-tune the
//!   remaining healthy weights around the frozen faulty cells
//!   (cloud-side). Expensive but handles severe damage.
//!
//! All three operate on a [`DefectMap`] — the per-parameter list of stuck
//! cells — which in deployment comes from march-style array test and here
//! can be sampled synthetically.
//!
//! # Example
//!
//! ```
//! use healthmon_repair::{remap_rows, DefectMap};
//! use healthmon_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let weights = Tensor::randn(&[8, 4], &mut rng);
//! let defects = DefectMap::sample_for_matrix(&weights, 0.1, &mut rng);
//! let repair = remap_rows(&weights, &defects);
//! // The remap never makes things worse than the identity assignment.
//! assert!(repair.repaired_error <= repair.unrepaired_error);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod defects;
mod redundancy;
mod remap;
mod retrain;

pub use defects::{DefectMap, StuckCell};
pub use redundancy::{repair_with_spares, SpareRepair};
pub use remap::{remap_rows, RowRemap};
pub use retrain::{retrain_with_faults, FaultyRetrainConfig, RetrainOutcome};
