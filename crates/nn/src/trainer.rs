//! A small training harness: minibatch SGD with shuffling, learning-rate
//! decay, accuracy evaluation, and optional drop-connect hardening.

use crate::loss::SoftmaxCrossEntropy;
use crate::optim::Optimizer;
use crate::Network;
use healthmon_tensor::{SeededRng, Tensor};

/// Domain-separation salt for the drop-connect mask stream, so masks are
/// independent of the shuffle stream even when the seeds collide.
const DROP_CONNECT_SALT: u64 = 0xD40C_0DAC_2020_0006;

/// Drop-connect hardening schedule: before every optimizer step a seeded
/// Bernoulli mask zeroes a fraction of each weight matrix (biases — the
/// CMOS periphery under the crossbar mapping convention — are never
/// dropped), and the corresponding gradients are masked after backprop so
/// dropped weights neither contribute to nor learn from the step.
///
/// Training under random weight dropping teaches the network to spread
/// function across surviving weights, so the deployed model tolerates
/// stuck crossbar cells it was never shown — the fault-tolerance
/// regularizer proposed for RRAM accelerators (drop-connect hardening).
#[derive(Debug, Clone, PartialEq)]
pub struct DropConnect {
    /// Base probability of dropping each weight per optimizer step.
    pub probability: f32,
    /// Per-layer overrides keyed by parameter name (e.g.
    /// `"layer0.weight"`); unlisted weight layers use `probability`.
    pub per_layer: Vec<(String, f32)>,
    /// Mask stream seed (forked per optimizer step; independent of the
    /// shuffle seed).
    pub seed: u64,
}

impl DropConnect {
    /// A uniform schedule dropping each weight with `probability`.
    pub fn new(probability: f32) -> Self {
        DropConnect { probability, per_layer: Vec::new(), seed: 0 }
    }

    /// Overrides the drop probability for one weight parameter.
    pub fn layer(mut self, key: impl Into<String>, probability: f32) -> Self {
        self.per_layer.push((key.into(), probability));
        self
    }

    /// Sets the mask stream seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The drop probability in effect for a weight parameter.
    pub fn rate_for(&self, key: &str) -> f32 {
        self.per_layer
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, p)| p)
            .unwrap_or(self.probability)
    }

    /// Validates every probability.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1)`.
    pub fn validate(&self) {
        let check = |p: f32, what: &str| {
            assert!(
                (0.0..1.0).contains(&p),
                "drop-connect probability {p} for {what} outside [0, 1)"
            );
        };
        check(self.probability, "the base schedule");
        for (key, p) in &self.per_layer {
            check(*p, key);
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Shuffle seed (shuffling is deterministic per epoch).
    pub seed: u64,
    /// Print one progress line per epoch to stderr.
    pub verbose: bool,
    /// Optional drop-connect hardening applied at every optimizer step.
    pub drop_connect: Option<DropConnect>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            lr_decay: 0.9,
            seed: 0,
            verbose: false,
            drop_connect: None,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean minibatch loss over the epoch.
    pub mean_loss: f32,
    /// Accuracy on the training set sampled at epoch end (fraction).
    pub train_accuracy: f32,
}

/// Result of a full training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Stats for each epoch in order.
    pub epochs: Vec<EpochStats>,
    /// Final accuracy on the held-out set, if one was provided.
    pub test_accuracy: Option<f32>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were run.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().expect("training ran at least one epoch").mean_loss
    }
}

/// Extracts the samples at `indices` from a sample-major dataset tensor
/// (`[N, ...sample_shape]`) into a new batch tensor.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_batch(images: &Tensor, indices: &[usize]) -> Tensor {
    let n = images.shape()[0];
    let sample_len: usize = images.shape()[1..].iter().product();
    let mut shape = images.shape().to_vec();
    shape[0] = indices.len();
    let mut out = Tensor::zeros(&shape);
    let src = images.as_slice();
    let dst = out.as_mut_slice();
    for (row, &idx) in indices.iter().enumerate() {
        assert!(idx < n, "batch index {idx} out of bounds for {n} samples");
        dst[row * sample_len..(row + 1) * sample_len]
            .copy_from_slice(&src[idx * sample_len..(idx + 1) * sample_len]);
    }
    out
}

/// Classification accuracy of `net` on a labelled dataset, evaluated in
/// minibatches.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of samples.
pub fn accuracy(net: &mut Network, images: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "label count {} != sample count {n}", labels.len());
    net.set_training(false);
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = gather_batch(images, &idx);
        let logits = net.forward(&batch);
        for (row, &label) in idx.iter().zip(&labels[start..end]) {
            let row_in_batch = row - start;
            if logits.row(row_in_batch).argmax() == label {
                correct += 1;
            }
        }
        start = end;
    }
    correct as f32 / n as f32
}

/// Drives minibatch training of a [`Network`] with any [`Optimizer`].
#[derive(Debug)]
pub struct Trainer<'a, O: Optimizer> {
    net: &'a mut Network,
    optimizer: O,
    config: TrainConfig,
}

impl<'a, O: Optimizer> Trainer<'a, O> {
    /// Creates a trainer borrowing the network for the duration of
    /// training.
    pub fn new(net: &'a mut Network, optimizer: O, config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be non-zero");
        assert!(config.epochs > 0, "epoch count must be non-zero");
        if let Some(dc) = &config.drop_connect {
            dc.validate();
        }
        Trainer { net, optimizer, config }
    }

    /// Runs training on `(images, labels)`; if `test` is provided the
    /// report includes held-out accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the number of training
    /// samples.
    pub fn fit(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        test: Option<(&Tensor, &[usize])>,
    ) -> TrainReport {
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count {} != sample count {n}", labels.len());
        let mut rng = SeededRng::new(self.config.seed);
        let mut epochs = Vec::with_capacity(self.config.epochs);
        let mut step = 0u64;
        for epoch in 0..self.config.epochs {
            self.net.set_training(true);
            let order = rng.permutation(n);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch = gather_batch(images, chunk);
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                self.net.zero_grads();
                // Drop-connect: zero the sampled weights for this step so
                // the forward pass runs on the thinned network.
                let masked = self
                    .config
                    .drop_connect
                    .as_ref()
                    .map(|dc| mask_weights(self.net, dc, step));
                let logits = self.net.forward(&batch);
                let out = SoftmaxCrossEntropy::with_labels(&logits, &batch_labels);
                self.net.backward(&out.grad);
                if let Some(masked) = masked {
                    // Restore the dropped weights and zero their
                    // gradients: a dropped weight neither contributes to
                    // the step's loss nor learns from it.
                    unmask_weights(self.net, &masked);
                }
                self.optimizer.step(self.net);
                loss_sum += out.loss as f64;
                batches += 1;
                step += 1;
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            // Sampled train accuracy on up to 1000 samples keeps epochs cheap.
            let probe = n.min(1000);
            let idx: Vec<usize> = (0..probe).collect();
            let probe_images = gather_batch(images, &idx);
            let probe_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            let train_accuracy =
                accuracy(self.net, &probe_images, &probe_labels, self.config.batch_size);
            if self.config.verbose {
                // Routed through the quiet-aware logger so a library
                // crate never writes to a stream the host can't redirect.
                healthmon_telemetry::log_info!(
                    "epoch {epoch}: loss {mean_loss:.4}, train acc {:.2}%",
                    train_accuracy * 100.0
                );
            }
            epochs.push(EpochStats { epoch, mean_loss, train_accuracy });
            let lr = self.optimizer.learning_rate() * self.config.lr_decay;
            self.optimizer.set_learning_rate(lr);
        }
        let test_accuracy = test.map(|(imgs, lbls)| {
            accuracy(self.net, imgs, lbls, self.config.batch_size)
        });
        self.net.set_training(false);
        TrainReport { epochs, test_accuracy }
    }
}

/// The weights one parameter had dropped for a single step: the
/// parameter's position in [`Network::params_and_grads`] order plus the
/// `(element index, original value)` pairs to restore.
struct DroppedParam {
    position: usize,
    dropped: Vec<(usize, f32)>,
}

/// Samples and applies this step's drop-connect masks: every weight
/// parameter (keys ending in `weight`; biases are CMOS periphery and
/// never dropped) loses each element with its layer's probability. The
/// mask stream is forked per step from the salted schedule seed and drawn
/// sequentially over parameters in layer order, so masks are a pure
/// function of `(schedule, step)` — bit-identical at any
/// `HEALTHMON_THREADS`.
fn mask_weights(net: &mut Network, dc: &DropConnect, step: u64) -> Vec<DroppedParam> {
    let mut rng = SeededRng::new(dc.seed ^ DROP_CONNECT_SALT).fork(step);
    let mut masked = Vec::new();
    let mut position = 0usize;
    net.for_each_param_mut(|key, tensor| {
        let pos = position;
        position += 1;
        if !key.ends_with("weight") {
            return;
        }
        let p = f64::from(dc.rate_for(key));
        if p <= 0.0 {
            return;
        }
        let mut dropped = Vec::new();
        for (i, w) in tensor.as_mut_slice().iter_mut().enumerate() {
            if rng.chance(p) {
                dropped.push((i, *w));
                *w = 0.0;
            }
        }
        if !dropped.is_empty() {
            masked.push(DroppedParam { position: pos, dropped });
        }
    });
    masked
}

/// Restores the dropped weights and zeroes their gradients after the
/// backward pass (`dL/dW = M ⊙ dL/dW_thinned`), so the optimizer step
/// leaves dropped weights untouched by this minibatch.
fn unmask_weights(net: &mut Network, masked: &[DroppedParam]) {
    let mut pairs = net.params_and_grads();
    for entry in masked {
        let (param, grad) = &mut pairs[entry.position];
        let (param, grad) = (param.as_mut_slice(), grad.as_mut_slice());
        for &(i, w) in &entry.dropped {
            param[i] = w;
            grad[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, Relu};
    use crate::optim::Sgd;

    /// A linearly-separable 2-class toy problem.
    fn toy_dataset(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let mut images = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            *images.at_mut(&[i, 0]) = cx + rng.normal(0.0, 0.3);
            *images.at_mut(&[i, 1]) = rng.normal(0.0, 0.3);
            labels.push(label);
        }
        (images, labels)
    }

    #[test]
    fn learns_separable_problem() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let (train_x, train_y) = toy_dataset(200, 1);
        let (test_x, test_y) = toy_dataset(100, 2);
        let config = TrainConfig { epochs: 10, batch_size: 16, ..TrainConfig::default() };
        let mut trainer = Trainer::new(&mut net, Sgd::new(0.2).momentum(0.9), config);
        let report = trainer.fit(&train_x, &train_y, Some((&test_x, &test_y)));
        assert!(report.test_accuracy.unwrap() > 0.95, "test acc {:?}", report.test_accuracy);
        assert!(report.final_loss() < report.epochs[0].mean_loss);
    }

    #[test]
    fn training_is_deterministic() {
        let build = || {
            let mut rng = SeededRng::new(0);
            let mut net = Network::new(vec![2]);
            net.push(Dense::new(2, 4, &mut rng));
            net.push(Dense::new(4, 2, &mut rng));
            net
        };
        let (x, y) = toy_dataset(64, 3);
        let config = TrainConfig { epochs: 3, batch_size: 8, ..TrainConfig::default() };
        let mut a = build();
        let mut b = build();
        let ra = Trainer::new(&mut a, Sgd::new(0.1), config.clone()).fit(&x, &y, None);
        let rb = Trainer::new(&mut b, Sgd::new(0.1), config).fit(&x, &y, None);
        assert_eq!(ra, rb);
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn drop_connect_training_is_deterministic() {
        let build = || {
            let mut rng = SeededRng::new(0);
            let mut net = Network::new(vec![2]);
            net.push(Dense::new(2, 8, &mut rng));
            net.push(Relu::new());
            net.push(Dense::new(8, 2, &mut rng));
            net
        };
        let (x, y) = toy_dataset(64, 3);
        let config = TrainConfig {
            epochs: 3,
            batch_size: 8,
            drop_connect: Some(DropConnect::new(0.3).seeded(9)),
            ..TrainConfig::default()
        };
        let mut a = build();
        let mut b = build();
        let ra = Trainer::new(&mut a, Sgd::new(0.1), config.clone()).fit(&x, &y, None);
        let rb = Trainer::new(&mut b, Sgd::new(0.1), config.clone()).fit(&x, &y, None);
        assert_eq!(ra, rb);
        assert_eq!(a.state_dict(), b.state_dict());

        // The mask stream must actually bite: hardened training diverges
        // from plain training on the same data and seeds.
        let mut plain = build();
        let plain_config = TrainConfig { drop_connect: None, ..config };
        Trainer::new(&mut plain, Sgd::new(0.1), plain_config).fit(&x, &y, None);
        assert_ne!(a.state_dict(), plain.state_dict());
    }

    #[test]
    fn drop_connect_hardened_net_still_learns() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let (train_x, train_y) = toy_dataset(200, 1);
        let (test_x, test_y) = toy_dataset(100, 2);
        let config = TrainConfig {
            epochs: 10,
            batch_size: 16,
            drop_connect: Some(DropConnect::new(0.2).seeded(4)),
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(&mut net, Sgd::new(0.2).momentum(0.9), config);
        let report = trainer.fit(&train_x, &train_y, Some((&test_x, &test_y)));
        assert!(report.test_accuracy.unwrap() > 0.9, "test acc {:?}", report.test_accuracy);
    }

    #[test]
    fn drop_connect_never_touches_biases() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 4, &mut rng));
        let dc = DropConnect::new(0.9).seeded(1);
        let masked = mask_weights(&mut net, &dc, 0);
        assert!(!masked.is_empty(), "p=0.9 should drop something");
        // Only layer0.weight (position 0) may appear; layer0.bias is
        // position 1 and must never be masked.
        assert!(masked.iter().all(|m| m.position == 0));
        unmask_weights(&mut net, &masked);
    }

    #[test]
    fn per_layer_override_controls_rate() {
        let dc = DropConnect::new(0.1).layer("layer2.weight", 0.0);
        assert_eq!(dc.rate_for("layer0.weight"), 0.1);
        assert_eq!(dc.rate_for("layer2.weight"), 0.0);

        // A zero override exempts that layer from masking entirely.
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Dense::new(16, 2, &mut rng));
        let dc = DropConnect::new(0.5).layer("layer1.weight", 0.0).seeded(2);
        let masked = mask_weights(&mut net, &dc, 0);
        // layer0.weight is position 0; layer1.weight (position 2) is exempt.
        assert!(masked.iter().all(|m| m.position == 0));
        unmask_weights(&mut net, &masked);
    }

    #[test]
    fn mask_then_unmask_restores_weights_and_zeroes_grads() {
        let mut rng = SeededRng::new(7);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, &mut rng));
        let before = net.state_dict();
        let dc = DropConnect::new(0.4).seeded(11);
        let masked = mask_weights(&mut net, &dc, 3);
        assert_ne!(net.state_dict(), before, "masking must zero some weights");
        // Run a backward pass so gradients are non-trivial.
        let x = Tensor::randn(&[4, 2], &mut rng);
        let logits = net.forward(&x);
        let out = SoftmaxCrossEntropy::with_labels(&logits, &[0, 1, 0, 1]);
        net.backward(&out.grad);
        unmask_weights(&mut net, &masked);
        assert_eq!(net.state_dict(), before, "unmask must restore weights bitwise");
        // Every dropped position's gradient is zeroed.
        let pairs = net.params_and_grads();
        for entry in &masked {
            let (_, grad) = &pairs[entry.position];
            for &(i, _) in &entry.dropped {
                assert_eq!(grad.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn drop_connect_rejects_invalid_probability() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(vec![2]);
        net.push(Dense::new(2, 2, &mut rng));
        let config = TrainConfig {
            drop_connect: Some(DropConnect::new(1.0)),
            ..TrainConfig::default()
        };
        let _ = Trainer::new(&mut net, Sgd::new(0.1), config);
    }

    #[test]
    fn gather_batch_copies_rows() {
        let images = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 2, 2]).unwrap();
        let batch = gather_batch(&images, &[2, 0]);
        assert_eq!(batch.shape(), &[2, 2, 2]);
        assert_eq!(&batch.as_slice()[..4], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(&batch.as_slice()[4..], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn accuracy_on_perfect_predictor() {
        let mut rng = SeededRng::new(1);
        let mut net = Network::new(vec![2]);
        let mut dense = Dense::new(2, 2, &mut rng);
        // Identity-ish weights: class = argmax of inputs.
        dense.params_mut()[0].as_mut_slice().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        dense.params_mut()[1].as_mut_slice().copy_from_slice(&[0.0, 0.0]);
        net.push(dense);
        let images = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        assert_eq!(accuracy(&mut net, &images, &[0, 1, 0], 2), 1.0);
        assert!((accuracy(&mut net, &images, &[1, 1, 0], 2) - 2.0 / 3.0).abs() < 1e-6);
    }
}
