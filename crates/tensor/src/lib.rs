//! Dense `f32` tensor math for the `healthmon` workspace.
//!
//! This crate provides the numeric substrate the rest of the workspace is
//! built on: a contiguous row-major [`Tensor`], cache-blocked matrix
//! multiplication, reductions and classification statistics
//! (softmax/argmax/top-k), and a deterministic random source
//! ([`SeededRng`]) with the normal and lognormal samplers the ReRAM error
//! models require.
//!
//! Everything is written from scratch against the standard library; no BLAS
//! and no external ndarray dependency, so behaviour is fully reproducible
//! across platforms from a seed.
//!
//! # Example
//!
//! ```
//! use healthmon_tensor::{Tensor, SeededRng};
//!
//! let mut rng = SeededRng::new(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 4]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod intacc;
mod linalg;
mod ops;
pub mod fastmath;
pub mod pool;
mod random;
mod scalar;
mod serdes;
mod shape;
mod stats;
mod tensor;

pub use error::TensorError;
pub use linalg::PackedB;
pub use random::SeededRng;
pub use scalar::Scalar;
pub use shape::Shape;
pub use stats::TopK;
pub use tensor::{GenericTensor, Tensor, TensorI8};
