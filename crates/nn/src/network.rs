//! The [`Network`]: an ordered stack of layers with whole-model forward,
//! backward, parameter access and (de)serialization.

use crate::layers::{DigitalEngine, Layer, MatmulEngine};
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// `Network` is the object every other crate in the workspace manipulates:
/// trainers optimize it, fault injectors perturb its weights through
/// [`Network::for_each_param_mut`], the crossbar simulator re-maps its
/// weights, and the test-pattern generators differentiate through it back
/// to the input via [`Network::backward`].
///
/// Cloning a network clones all weights; fault campaigns clone the golden
/// model once per fault model.
#[derive(Debug, Clone)]
pub struct Network {
    input_shape: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
}

/// Summary statistics over all trainable parameters of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamStats {
    /// Total number of scalar parameters.
    pub count: usize,
    /// Mean parameter value.
    pub mean: f32,
    /// Population standard deviation of parameter values.
    pub std: f32,
    /// L2 norm of the full parameter vector.
    pub l2: f32,
}

/// Error loading network weights from a state dict or file.
#[derive(Debug)]
pub enum LoadStateError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file was not valid JSON of the expected schema.
    Json(JsonError),
    /// A parameter key in the dict does not exist in the network (or a
    /// network parameter is missing from the dict).
    KeyMismatch(String),
    /// A parameter tensor has the wrong shape.
    ShapeMismatch {
        /// Offending parameter key.
        key: String,
        /// Shape in the network.
        expected: Vec<usize>,
        /// Shape in the dict.
        actual: Vec<usize>,
    },
}

impl fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStateError::Io(e) => write!(f, "i/o error loading weights: {e}"),
            LoadStateError::Json(e) => write!(f, "malformed weight file: {e}"),
            LoadStateError::KeyMismatch(k) => write!(f, "parameter key mismatch at `{k}`"),
            LoadStateError::ShapeMismatch { key, expected, actual } => {
                write!(f, "parameter `{key}` has shape {actual:?}, expected {expected:?}")
            }
        }
    }
}

impl Error for LoadStateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadStateError::Io(e) => Some(e),
            LoadStateError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadStateError {
    fn from(e: std::io::Error) -> Self {
        LoadStateError::Io(e)
    }
}

impl From<JsonError> for LoadStateError {
    fn from(e: JsonError) -> Self {
        LoadStateError::Json(e)
    }
}

/// A layer emitted a non-finite activation during a checked forward pass.
///
/// Produced by [`Network::forward_checked`]; identifies the first layer
/// whose output contained a `NaN` or `±∞` so a failing device can be
/// localized instead of silently poisoning every downstream statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonFiniteActivation {
    /// Index of the first offending layer (`usize::MAX` when the *input*
    /// itself was non-finite).
    pub layer: usize,
}

impl fmt::Display for NonFiniteActivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.layer == usize::MAX {
            write!(f, "network input contains non-finite values")
        } else {
            write!(f, "layer {} produced non-finite activations", self.layer)
        }
    }
}

impl Error for NonFiniteActivation {}

impl Network {
    /// Creates an empty network expecting per-sample inputs of
    /// `input_shape` (batch dimension excluded), e.g. `[1, 28, 28]`.
    ///
    /// # Panics
    ///
    /// Panics if `input_shape` is empty.
    pub fn new(input_shape: Vec<usize>) -> Self {
        assert!(!input_shape.is_empty(), "input shape must be non-empty");
        Network { input_shape, layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Per-sample input shape (without the batch dimension).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Forward pass over a batch `[N, ...input_shape]`, returning logits.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(
            input.ndim() == self.input_shape.len() + 1
                && input.shape()[1..] == self.input_shape[..],
            "network expects [N, {:?}] input, got {:?}",
            self.input_shape,
            input.shape()
        );
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass that checks every layer output for non-finite values.
    ///
    /// A fault-injected (or genuinely failing) device can drive weights to
    /// `NaN`/`±∞`; once that happens the plain [`Network::forward`] output
    /// poisons every comparison made with it (`NaN >= t` is always false).
    /// This variant stops at the first offending layer so callers can
    /// contain the failure and escalate deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteActivation`] naming the first layer whose output
    /// was non-finite (`layer == usize::MAX` means the input itself).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn forward_checked(&mut self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        assert!(
            input.ndim() == self.input_shape.len() + 1
                && input.shape()[1..] == self.input_shape[..],
            "network expects [N, {:?}] input, got {:?}",
            self.input_shape,
            input.shape()
        );
        if !input.all_finite() {
            return Err(NonFiniteActivation { layer: usize::MAX });
        }
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x);
            if !x.all_finite() {
                return Err(NonFiniteActivation { layer: i });
            }
        }
        Ok(x)
    }

    /// Inference pass through `&self`: evaluation-mode forward with no
    /// activation caching, bit-identical to
    /// `set_training(false); forward(input)`.
    ///
    /// This is the read-only entry point the detection stack uses: the
    /// network is never mutated, so golden models and device-under-test
    /// references can be shared without cloning for the borrow checker.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.infer_with(input, &DigitalEngine)
    }

    /// Inference pass with every weight matmul routed through `engine`.
    ///
    /// Layers are keyed `layer{idx}` (so a Dense at stack index 3 asks the
    /// engine for `layer3.weight`), matching [`Network::state_dict`] keys.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn infer_with(&self, input: &Tensor, engine: &dyn MatmulEngine) -> Tensor {
        assert!(
            input.ndim() == self.input_shape.len() + 1
                && input.shape()[1..] == self.input_shape[..],
            "network expects [N, {:?}] input, got {:?}",
            self.input_shape,
            input.shape()
        );
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.infer(&x, &format!("layer{i}"), engine);
        }
        x
    }

    /// [`Network::infer`] with per-layer non-finite checking, mirroring
    /// [`Network::forward_checked`].
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteActivation`] naming the first layer whose output
    /// was non-finite (`layer == usize::MAX` means the input itself).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        self.infer_checked_with(input, &DigitalEngine)
    }

    /// [`Network::infer_with`] with per-layer non-finite checking.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteActivation`] naming the first layer whose output
    /// was non-finite (`layer == usize::MAX` means the input itself).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match `[N, ...input_shape]`.
    pub fn infer_checked_with(
        &self,
        input: &Tensor,
        engine: &dyn MatmulEngine,
    ) -> Result<Tensor, NonFiniteActivation> {
        assert!(
            input.ndim() == self.input_shape.len() + 1
                && input.shape()[1..] == self.input_shape[..],
            "network expects [N, {:?}] input, got {:?}",
            self.input_shape,
            input.shape()
        );
        if !input.all_finite() {
            return Err(NonFiniteActivation { layer: usize::MAX });
        }
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.infer(&x, &format!("layer{i}"), engine);
            if !x.all_finite() {
                return Err(NonFiniteActivation { layer: i });
            }
        }
        Ok(x)
    }

    /// Forward pass for a single sample of shape `input_shape`; returns a
    /// 1-D logit vector.
    ///
    /// # Panics
    ///
    /// Panics if the sample shape does not match `input_shape`.
    pub fn forward_single(&mut self, sample: &Tensor) -> Tensor {
        assert_eq!(
            sample.shape(),
            &self.input_shape[..],
            "sample shape {:?} != network input shape {:?}",
            sample.shape(),
            self.input_shape
        );
        let mut batch_shape = vec![1usize];
        batch_shape.extend_from_slice(&self.input_shape);
        let batched = sample.reshape(&batch_shape).expect("adding batch dim preserves count");
        let logits = self.forward(&batched);
        let classes = logits.len();
        logits.reshape(&[classes]).expect("single-sample logits flatten")
    }

    /// Backward pass: propagates the loss gradient (w.r.t. the logits of
    /// the *most recent* `forward`) through every layer, accumulating
    /// parameter gradients, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Resets accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Switches training-only behaviour (dropout etc.) on or off.
    pub fn set_training(&mut self, on: bool) {
        for layer in &mut self.layers {
            layer.set_training(on);
        }
    }

    /// Predicted class (argmax of logits) for a single sample.
    pub fn predict(&mut self, sample: &Tensor) -> usize {
        self.forward_single(sample).argmax()
    }

    /// Calls `f(key, tensor)` for every trainable parameter, with stable
    /// keys of the form `layer{idx}.{name}` (e.g. `layer0.weight`).
    pub fn for_each_param(&self, mut f: impl FnMut(&str, &Tensor)) {
        for (i, layer) in self.layers.iter().enumerate() {
            let names = layer.param_names();
            for (name, tensor) in names.iter().zip(layer.params()) {
                f(&format!("layer{i}.{name}"), tensor);
            }
        }
    }

    /// Calls `f(key, tensor)` with mutable access to every trainable
    /// parameter. This is the hook the fault injectors use.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&str, &mut Tensor)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let names = layer.param_names();
            for (name, tensor) in names.iter().zip(layer.params_mut()) {
                f(&format!("layer{i}.{name}"), tensor);
            }
        }
    }

    /// Overwrites every trainable parameter with the corresponding value
    /// from `src`, reusing this network's allocations — the fast path for
    /// campaign scratch networks that re-derive many fault models from one
    /// golden network without cloning each time.
    ///
    /// Only parameters are copied; gradients, activation caches, and layer
    /// modes are untouched (callers typically follow with
    /// [`Network::zero_grads`]).
    ///
    /// # Panics
    ///
    /// Panics if the two networks do not have identical architectures
    /// (layer count, parameter counts, or parameter shapes).
    pub fn copy_params_from(&mut self, src: &Network) {
        assert_eq!(
            self.layers.len(),
            src.layers.len(),
            "copy_params_from: layer count mismatch"
        );
        for (dst_layer, src_layer) in self.layers.iter_mut().zip(&src.layers) {
            let mut dst_params = dst_layer.params_mut();
            let src_params = src_layer.params();
            assert_eq!(
                dst_params.len(),
                src_params.len(),
                "copy_params_from: parameter count mismatch"
            );
            for (d, s) in dst_params.iter_mut().zip(src_params) {
                d.copy_from(s);
            }
        }
    }

    /// Mutable (parameter, gradient) pairs across all layers, in layer
    /// order; consumed by optimizers.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.for_each_param(|_, t| n += t.len());
        n
    }

    /// Summary statistics over all parameters.
    pub fn param_stats(&self) -> ParamStats {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        self.for_each_param(|_, t| {
            count += t.len();
            for &v in t.as_slice() {
                sum += v as f64;
                sum_sq += (v as f64) * (v as f64);
            }
        });
        let mean = if count > 0 { sum / count as f64 } else { 0.0 };
        let var = if count > 0 { (sum_sq / count as f64 - mean * mean).max(0.0) } else { 0.0 };
        ParamStats {
            count,
            mean: mean as f32,
            std: var.sqrt() as f32,
            l2: sum_sq.sqrt() as f32,
        }
    }

    /// Snapshot of all parameters keyed by `layer{idx}.{name}`.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.for_each_param(|k, t| out.push((k.to_owned(), t.clone())));
        out
    }

    /// Loads parameters from a state dict produced by
    /// [`Network::state_dict`] on an identically-structured network.
    ///
    /// # Errors
    ///
    /// Returns [`LoadStateError::KeyMismatch`] if keys differ and
    /// [`LoadStateError::ShapeMismatch`] if a tensor shape differs.
    pub fn load_state_dict(&mut self, dict: &[(String, Tensor)]) -> Result<(), LoadStateError> {
        let mut expected_keys = Vec::new();
        self.for_each_param(|k, _| expected_keys.push(k.to_owned()));
        if expected_keys.len() != dict.len() {
            return Err(LoadStateError::KeyMismatch(format!(
                "expected {} parameters, dict has {}",
                expected_keys.len(),
                dict.len()
            )));
        }
        let mut err: Option<LoadStateError> = None;
        let mut idx = 0usize;
        self.for_each_param_mut(|k, t| {
            if err.is_some() {
                return;
            }
            let (dk, dt) = &dict[idx];
            idx += 1;
            if dk != k {
                err = Some(LoadStateError::KeyMismatch(format!("expected `{k}`, found `{dk}`")));
                return;
            }
            if dt.shape() != t.shape() {
                err = Some(LoadStateError::ShapeMismatch {
                    key: k.to_owned(),
                    expected: t.shape().to_vec(),
                    actual: dt.shape().to_vec(),
                });
                return;
            }
            *t = dt.clone();
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serializes the state dict as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save_weights(&self, path: impl AsRef<Path>) -> Result<(), LoadStateError> {
        // Same layout the old serde derive produced: a JSON array of
        // [key, tensor] pairs, so weight files from earlier builds load.
        let dict = self.state_dict();
        let json = Json::Array(
            dict.iter()
                .map(|(k, t)| Json::Array(vec![Json::String(k.clone()), t.to_json()]))
                .collect(),
        );
        std::fs::write(path, json.render())?;
        Ok(())
    }

    /// Loads a JSON state dict written by [`Network::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read, parsed, or does not
    /// match the network structure.
    pub fn load_weights(&mut self, path: impl AsRef<Path>) -> Result<(), LoadStateError> {
        let json = std::fs::read_to_string(path)?;
        let value = healthmon_serdes::parse(&json)?;
        let dict: Vec<(String, Tensor)> = Vec::from_json(&value)?;
        self.load_state_dict(&dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use healthmon_tensor::SeededRng;

    fn tiny_net(rng: &mut SeededRng) -> Network {
        let mut net = Network::new(vec![4]);
        net.push(Dense::new(4, 8, rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 3, rng));
        net
    }

    #[test]
    fn forward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        assert_eq!(net.forward(&x).shape(), &[5, 3]);
        let s = Tensor::randn(&[4], &mut rng);
        assert_eq!(net.forward_single(&s).shape(), &[3]);
    }

    #[test]
    fn forward_single_matches_batch_row() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let batch = net.forward(&x);
        for row in 0..3 {
            let single = net.forward_single(&x.row(row));
            for (a, b) in single.as_slice().iter().zip(batch.row(row).as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn param_keys_stable() {
        let mut rng = SeededRng::new(3);
        let net = tiny_net(&mut rng);
        let mut keys = Vec::new();
        net.for_each_param(|k, _| keys.push(k.to_owned()));
        assert_eq!(keys, vec!["layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias"]);
    }

    #[test]
    fn num_params_counts_everything() {
        let mut rng = SeededRng::new(4);
        let net = tiny_net(&mut rng);
        // 4*8 + 8 + 8*3 + 3 = 67
        assert_eq!(net.num_params(), 67);
    }

    #[test]
    fn state_dict_round_trip() {
        let mut rng = SeededRng::new(5);
        let src = tiny_net(&mut rng);
        let mut dst = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        dst.load_state_dict(&src.state_dict()).unwrap();
        let mut src = src;
        let a = src.forward(&x);
        let b = dst.forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut rng = SeededRng::new(6);
        let src = tiny_net(&mut rng);
        let mut other = Network::new(vec![4]);
        other.push(Dense::new(4, 9, &mut rng));
        other.push(Relu::new());
        other.push(Dense::new(9, 3, &mut rng));
        assert!(matches!(
            other.load_state_dict(&src.state_dict()),
            Err(LoadStateError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn save_load_file_round_trip() {
        let mut rng = SeededRng::new(7);
        let src = tiny_net(&mut rng);
        let dir = std::env::temp_dir().join("healthmon_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");
        src.save_weights(&path).unwrap();
        let mut dst = tiny_net(&mut rng);
        dst.load_weights(&path).unwrap();
        assert_eq!(src.state_dict(), dst.state_dict());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clone_is_deep() {
        let mut rng = SeededRng::new(8);
        let mut net = tiny_net(&mut rng);
        let mut copy = net.clone();
        copy.for_each_param_mut(|_, t| t.map_inplace(|_| 0.0));
        // Original unchanged.
        let mut nonzero = false;
        net.for_each_param(|_, t| nonzero |= t.as_slice().iter().any(|&v| v != 0.0));
        assert!(nonzero);
        let x = Tensor::randn(&[1, 4], &mut rng);
        assert_ne!(net.forward(&x), copy.forward(&x));
    }

    #[test]
    fn param_stats_consistency() {
        let mut rng = SeededRng::new(9);
        let net = tiny_net(&mut rng);
        let stats = net.param_stats();
        assert_eq!(stats.count, 67);
        assert!(stats.l2 > 0.0);
        assert!(stats.std > 0.0);
    }

    #[test]
    fn input_gradient_flows_to_input() {
        let mut rng = SeededRng::new(10);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let out = net.forward(&x);
        let g = net.backward(&Tensor::ones(out.shape()));
        assert_eq!(g.shape(), x.shape());
        assert!(g.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn forward_checked_passes_healthy_network() {
        let mut rng = SeededRng::new(12);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let checked = net.forward_checked(&x).unwrap();
        let plain = net.forward(&x);
        assert_eq!(checked, plain);
    }

    #[test]
    fn forward_checked_names_poisoned_layer() {
        let mut rng = SeededRng::new(13);
        let mut net = tiny_net(&mut rng);
        // Poison one weight of the final Dense layer (stack index 2).
        net.for_each_param_mut(|k, t| {
            if k == "layer2.weight" {
                t.map_inplace(|_| f32::NAN);
            }
        });
        let x = Tensor::randn(&[1, 4], &mut rng);
        let err = net.forward_checked(&x).unwrap_err();
        assert_eq!(err.layer, 2);
        assert!(err.to_string().contains("layer 2"));
    }

    #[test]
    fn forward_checked_rejects_non_finite_input() {
        let mut rng = SeededRng::new(14);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::full(&[1, 4], f32::INFINITY);
        let err = net.forward_checked(&x).unwrap_err();
        assert_eq!(err.layer, usize::MAX);
        assert!(err.to_string().contains("input"));
    }

    #[test]
    #[should_panic(expected = "network expects")]
    fn forward_rejects_wrong_shape() {
        let mut rng = SeededRng::new(11);
        let mut net = tiny_net(&mut rng);
        net.forward(&Tensor::zeros(&[2, 5]));
    }
}
