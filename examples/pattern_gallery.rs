//! Pattern gallery: renders C-TP, O-TP and AET patterns as ASCII art —
//! the terminal counterpart of the paper's Fig 2, which shows that O-TP
//! patterns look like structured "white noise" rather than digits.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example pattern_gallery
//! ```

use healthmon::{AetGenerator, CtpGenerator, OtpGenerator, TestPatternSet};
use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::{SeededRng, Tensor};

const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a `[1, 28, 28]` grayscale tensor as ASCII, downsampled 2x.
fn ascii(image: &Tensor) -> String {
    let mut out = String::new();
    for y in (0..28).step_by(2) {
        for x in (0..28).step_by(2) {
            let v = (image.at(&[0, y, x])
                + image.at(&[0, y + 1, x])
                + image.at(&[0, y, x + 1])
                + image.at(&[0, y + 1, x + 1]))
                / 4.0;
            let idx = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn show(title: &str, set: &TestPatternSet, count: usize) {
    println!("=== {title} ===");
    let blocks: Vec<Vec<String>> = (0..count.min(set.len()))
        .map(|i| ascii(&set.pattern(i)).lines().map(str::to_owned).collect())
        .collect();
    for row in 0..blocks[0].len() {
        let line: Vec<&str> = blocks.iter().map(|b| b[row].as_str()).collect();
        println!("{}", line.join("   "));
    }
    println!();
}

fn main() {
    let spec = DatasetSpec { train: 1200, test: 300, seed: 7, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let mut rng = SeededRng::new(42);
    let mut model = Network::new(vec![1, 28, 28]);
    model.push(Conv2d::new(1, 4, 5, 1, 2, &mut rng));
    model.push(Relu::new());
    model.push(MaxPool2d::new(2, 2));
    model.push(Flatten::new());
    model.push(Dense::new(4 * 14 * 14, 32, &mut rng));
    model.push(Relu::new());
    model.push(Dense::new(32, 10, &mut rng));
    eprintln!("training (quick) ...");
    let config = TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut model, Sgd::new(0.05).momentum(0.9), config).fit(
        &split.train.images,
        &split.train.labels,
        None,
    );

    // Ordinary test images for contrast.
    let originals = TestPatternSet::new(
        "original",
        split.test.random_subset(4, &mut rng).images.clone(),
    );
    show("original test images (digits)", &originals, 4);

    let ctp = CtpGenerator::new(4).select(&mut model, &split.test);
    show("C-TP corner data (hardest digits: near decision boundaries)", &ctp, 4);

    let aet = AetGenerator::new(4, 0.2).generate(&mut model, &split.test, &mut rng);
    show("AET adversarial examples (digits + FGSM noise)", &aet, 4);

    let reference =
        FaultCampaign::new(&model, 99).model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    eprintln!("optimizing O-TP patterns ...");
    let (otp, _) = OtpGenerator::new()
        .max_iters(300)
        .generate(&model, &reference, &mut SeededRng::new(5));
    show("O-TP generated patterns (cf. paper Fig 2: white-noise style)", &otp, 4);
}
